"""Fleet supervisor: N sharded workers + 1 router, restart on crash.

``repro-serve --workers N`` runs this supervisor.  It spawns N worker
daemons (one event loop per core, each owning a private unix socket, a
private cache shard, a private snapshot lineage and a private telemetry
file) plus one :mod:`~repro.serve.router` process owning the public
endpoint, then babysits the tree:

* a worker that exits **non-zero** (crash, SIGKILL) is restarted from
  its *own* snapshot directory without disturbing its siblings — the
  shard id is baked into the snapshot fingerprint, so a worker can
  never resume from another shard's state;
* a router that dies the same way is restarted immediately; it holds no
  exactly-once state (DESIGN.md §14), so nothing is lost — clients see
  a connection reset, reconnect, and resume from worker watermarks;
* exit code **zero** means a deliberate shutdown: a worker that was
  told to stop is left down, and a router exiting zero (it scattered a
  ``shutdown`` op to every shard first) ends the whole fleet.

The supervisor maintains an atomic JSON pidfile mapping roles to live
pids so out-of-band tooling (the soak harness, ops scripts) can SIGKILL
a *specific* worker or the router without guessing.  After the fleet
drains, the per-shard telemetry files are folded into one
``repro.obs``-schema JSONL — histogram sketches merged exactly, totals
summed — so ``repro-report --check`` sees a single coherent artifact.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cdn.sharding import DEFAULT_NUM_BUCKETS
from repro.obs.events import EventLog

__all__ = ["FleetConfig", "ServeFleet", "merge_shard_telemetry", "shard_telemetry_path"]


def shard_telemetry_path(base: str, shard: int) -> str:
    """Per-worker telemetry file name: ``<base>.shard-<k>``.

    The suffix goes *after* any ``.gz`` so the worker's writer still
    sees its compression hint — merge strips the suffix back off.
    """
    return f"{base}.shard-{shard}"


@dataclass(frozen=True)
class FleetConfig:
    """Everything the supervisor needs to build and babysit the tree."""

    workers: int
    socket: Optional[str] = None
    tcp: Optional[Tuple[str, int]] = None
    #: holds worker sockets + pidfile; derived from ``socket`` if unset
    run_dir: Optional[str] = None
    num_buckets: int = DEFAULT_NUM_BUCKETS
    #: fleet-level snapshot root; worker ``k`` uses ``<dir>/shard-k``
    snapshot_dir: Optional[str] = None
    #: merged telemetry target; worker ``k`` writes ``<path>.shard-k``
    telemetry_path: Optional[str] = None
    #: atomic JSON role->pid map (defaults to ``<run_dir>/fleet.json``)
    pidfile: Optional[str] = None
    #: verbatim argv tail shared by every worker (algorithm, limits, ...)
    worker_args: Tuple[str, ...] = ()
    echo_events: bool = False
    #: pause before respawning a crashed child (avoids a tight fork loop)
    restart_delay: float = 0.05

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.num_buckets < self.workers:
            raise ValueError(
                f"need at least as many buckets ({self.num_buckets}) as "
                f"workers ({self.workers})"
            )
        if not (self.socket or self.tcp):
            raise ValueError("fleet needs a public endpoint (socket or tcp)")
        if self.run_dir is None and self.socket is None:
            raise ValueError("tcp-only fleets must set run_dir explicitly")

    @property
    def effective_run_dir(self) -> str:
        return self.run_dir if self.run_dir is not None else f"{self.socket}.fleet"

    @property
    def effective_pidfile(self) -> str:
        if self.pidfile is not None:
            return self.pidfile
        return os.path.join(self.effective_run_dir, "fleet.json")


@dataclass
class _Child:
    """One supervised subprocess and its respawn recipe."""

    role: str
    argv: List[str]
    #: unix socket the child binds — unlinked before every (re)spawn so
    #: a SIGKILLed predecessor's stale inode can't block the bind
    socket_path: Optional[str] = None
    proc: Optional[subprocess.Popen] = None
    restarts: int = 0
    #: exited zero on purpose; never respawned
    done: bool = False
    log: Optional[object] = field(default=None, repr=False)


class ServeFleet:
    """Spawn, supervise and drain one sharded serving fleet."""

    def __init__(self, config: FleetConfig, events: Optional[EventLog] = None):
        self.config = config
        self.events = events if events is not None else EventLog()
        self.run_dir = config.effective_run_dir
        self.pidfile = config.effective_pidfile
        self.workers: List[_Child] = []
        self.router: Optional[_Child] = None
        self._terminate = False

    # -- layout --------------------------------------------------------------

    def worker_socket(self, shard: int) -> str:
        return os.path.join(self.run_dir, f"worker-{shard}.sock")

    def worker_argv(self, shard: int) -> List[str]:
        config = self.config
        argv = [
            sys.executable,
            "-m",
            "repro.serve.cli",
            "--socket",
            self.worker_socket(shard),
            "--shard",
            str(shard),
            "--num-shards",
            str(config.workers),
            "--num-buckets",
            str(config.num_buckets),
        ]
        if config.snapshot_dir is not None:
            argv += [
                "--snapshot-dir",
                os.path.join(config.snapshot_dir, f"shard-{shard}"),
            ]
        if config.telemetry_path is not None:
            argv += [
                "--telemetry",
                shard_telemetry_path(config.telemetry_path, shard),
            ]
        if config.echo_events:
            argv.append("--echo-events")
        argv.extend(config.worker_args)
        return argv

    def router_argv(self) -> List[str]:
        config = self.config
        argv = [sys.executable, "-m", "repro.serve.router"]
        if config.socket is not None:
            argv += ["--socket", config.socket]
        if config.tcp is not None:
            host, port = config.tcp
            argv += ["--tcp", f"{host}:{port}"]
        for shard in range(config.workers):
            argv += ["--worker", self.worker_socket(shard)]
        argv += ["--num-buckets", str(config.num_buckets)]
        if config.echo_events:
            argv.append("--echo-events")
        return argv

    # -- pidfile -------------------------------------------------------------

    def write_pidfile(self) -> None:
        """Atomically publish the live role->pid map.

        Rewritten after every respawn, so a reader always sees pids it
        can actually signal (modulo the inherent race of pid reuse).
        """
        payload = {
            "supervisor": os.getpid(),
            "socket": self.config.socket,
            "tcp": list(self.config.tcp) if self.config.tcp else None,
            "router": {
                "pid": (
                    self.router.proc.pid
                    if self.router and self.router.proc
                    else None
                ),
                "restarts": self.router.restarts if self.router else 0,
            },
            "workers": [
                {
                    "shard": shard,
                    "pid": child.proc.pid if child.proc else None,
                    "socket": self.worker_socket(shard),
                    "restarts": child.restarts,
                    "done": child.done,
                }
                for shard, child in enumerate(self.workers)
            ],
        }
        tmp = self.pidfile + ".tmp"
        with open(tmp, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2)
        os.replace(tmp, self.pidfile)

    # -- process management --------------------------------------------------

    def _spawn(self, child: _Child) -> None:
        if child.socket_path is not None:
            try:
                os.unlink(child.socket_path)
            except OSError:
                pass
        child.proc = subprocess.Popen(
            child.argv,
            stdin=subprocess.DEVNULL,
            stdout=child.log or subprocess.DEVNULL,
            stderr=child.log or subprocess.DEVNULL,
        )

    def start(self) -> None:
        os.makedirs(self.run_dir, exist_ok=True)
        config = self.config
        if config.snapshot_dir is not None:
            os.makedirs(config.snapshot_dir, exist_ok=True)
        for shard in range(config.workers):
            log = open(
                os.path.join(self.run_dir, f"worker-{shard}.log"), "ab"
            )
            child = _Child(
                role=f"worker-{shard}",
                argv=self.worker_argv(shard),
                socket_path=self.worker_socket(shard),
                log=log,
            )
            self._spawn(child)
            self.workers.append(child)
        router_log = open(os.path.join(self.run_dir, "router.log"), "ab")
        self.router = _Child(
            role="router",
            argv=self.router_argv(),
            socket_path=config.socket,
            log=router_log,
        )
        self._spawn(self.router)
        self.write_pidfile()
        self.events.info(
            "fleet-start",
            f"{config.workers} worker(s) + router "
            f"(pidfile {self.pidfile})",
        )

    def request_stop(self) -> None:
        self._terminate = True

    def _respawn(self, child: _Child) -> None:
        time.sleep(self.config.restart_delay)
        child.restarts += 1
        self._spawn(child)
        self.write_pidfile()

    def poll_once(self) -> bool:
        """One supervision step.  Returns False when the fleet is over."""
        for child in self.workers:
            if child.done or child.proc is None:
                continue
            rc = child.proc.poll()
            if rc is None:
                continue
            if rc == 0:
                child.done = True
                self.events.info(f"{child.role}-stopped", "deliberate shutdown")
                self.write_pidfile()
            else:
                self.events.error(
                    f"{child.role}-crash",
                    f"rc={rc}; restarting from its own snapshots",
                )
                self._respawn(child)
        router = self.router
        if router is not None and router.proc is not None:
            rc = router.proc.poll()
            if rc is not None:
                if rc == 0:
                    # the router scattered shutdown to every shard
                    # before exiting: this is the fleet-wide stop signal
                    router.done = True
                    self.events.info("router-stopped", "fleet shutdown")
                    return False
                self.events.error(
                    "router-crash", f"rc={rc}; restarting (stateless)"
                )
                self._respawn(router)
        if all(child.done for child in self.workers):
            return False
        return True

    def _wait_child(self, child: _Child, deadline: float) -> None:
        if child.proc is None:
            return
        while child.proc.poll() is None:
            if time.monotonic() >= deadline:
                break
            time.sleep(0.02)

    def drain(self, timeout: float = 15.0) -> None:
        """Stop everything still alive, gracefully first.

        SIGTERM triggers each daemon's graceful shutdown (final
        snapshot + telemetry flush), so even a supervisor-initiated stop
        produces complete artifacts.  SIGKILL only after ``timeout``.
        """
        deadline = time.monotonic() + timeout
        alive = [c for c in self.workers if c.proc and c.proc.poll() is None]
        router = self.router
        if router and router.proc and router.proc.poll() is None:
            alive.append(router)
        for child in alive:
            try:
                child.proc.send_signal(signal.SIGTERM)
            except (ProcessLookupError, OSError):
                pass
        for child in alive:
            self._wait_child(child, deadline)
        for child in alive:
            if child.proc.poll() is None:
                self.events.error(
                    f"{child.role}-stuck", "SIGKILL after drain timeout"
                )
                try:
                    child.proc.kill()
                except (ProcessLookupError, OSError):
                    pass
                child.proc.wait()
        for child in self.workers + ([router] if router else []):
            if child.log is not None:
                try:
                    child.log.close()
                except Exception:
                    pass

    def run(self, poll_interval: float = 0.05) -> int:
        """Start, supervise until shutdown or signal, drain, merge."""
        self.start()
        try:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    signal.signal(signum, lambda *_: self.request_stop())
                except ValueError:
                    # not the main thread (tests drive run() directly)
                    break
        except Exception:
            pass
        try:
            while not self._terminate:
                if not self.poll_once():
                    break
                time.sleep(poll_interval)
        finally:
            self.drain()
            if self.config.telemetry_path is not None:
                try:
                    records = self.merge_telemetry()
                    if records:
                        self.events.info(
                            "fleet-telemetry-merged",
                            f"{records} record(s) -> "
                            f"{self.config.telemetry_path}",
                        )
                except Exception as exc:
                    self.events.error("fleet-telemetry-merge-failed", repr(exc))
            try:
                os.unlink(self.pidfile)
            except OSError:
                pass
        return 0

    # -- telemetry merge -----------------------------------------------------

    def merge_telemetry(self) -> int:
        config = self.config
        paths = [
            shard_telemetry_path(config.telemetry_path, shard)
            for shard in range(config.workers)
        ]
        return merge_shard_telemetry(
            config.telemetry_path,
            [path for path in paths if os.path.exists(path)],
            workers=config.workers,
            router_restarts=self.router.restarts if self.router else 0,
            worker_restarts=[child.restarts for child in self.workers],
        )


def merge_shard_telemetry(
    out_path: str,
    shard_paths: Sequence[str],
    workers: int = 0,
    router_restarts: int = 0,
    worker_restarts: Optional[Sequence[int]] = None,
) -> int:
    """Fold per-shard telemetry JSONLs into one schema-valid artifact.

    The merge mirrors the router's live ``stats`` fold, applied to the
    at-rest artifacts: lane registries merge exactly (bucket-wise
    histogram merge via :meth:`MetricRegistry.from_merged`), traffic
    totals sum field-wise, per-shard lane snapshots concatenate in time
    order (each already tagged with its shard id by its worker), and
    one merged run report carries fleet-level extras.  Returns the
    record count written, 0 when ``shard_paths`` is empty.
    """
    from repro.obs import Telemetry, TelemetryOptions
    from repro.obs.events import TelemetryEvent
    from repro.obs.jsonl import read_telemetry, write_telemetry
    from repro.obs.registry import MetricRegistry

    if not shard_paths:
        return 0
    files = [read_telemetry(path) for path in shard_paths]
    events = EventLog(max_records=10_000 * max(1, len(files)))
    for file in files:
        for record in file.events:
            payload = {k: v for k, v in record.items() if k != "kind"}
            event = TelemetryEvent.from_dict(payload)
            events.emit(event.level, event.tag, event.detail, wall=event.wall)
    events.records.sort(key=lambda record: record.wall)

    lane_records = [file.lanes.get("serve", {}) for file in files]
    totals: Dict[str, float] = {}
    for record in lane_records:
        for key, value in (record.get("totals") or {}).items():
            totals[key] = totals.get(key, 0) + value
    registry = MetricRegistry.from_merged(
        [record.get("registry", {}) for record in lane_records]
    )

    snapshots: List[dict] = []
    for file in files:
        for snapshot in file.lane_snapshots("serve"):
            snapshots.append(
                {k: v for k, v in snapshot.items() if k not in ("kind", "lane")}
            )
    snapshots.sort(key=lambda s: (s.get("t", 0.0), s.get("shard", 0)))

    watermark = sum(
        file.meta.get("meta", {}).get("watermark", 0) for file in files
    )
    telemetry = Telemetry(
        options=TelemetryOptions(probes=False),
        events=events,
        meta={
            "source": "repro-serve-fleet",
            "workers": workers or len(files),
            "shards_merged": len(files),
            "watermark": watermark,
            "router_restarts": router_restarts,
            "worker_restarts": list(worker_restarts or []),
            "algorithm": files[0].meta.get("meta", {}).get("algorithm"),
        },
    )
    lane = telemetry.lane("serve")
    lane.algorithm = str(files[0].meta.get("meta", {}).get("algorithm") or "")
    lane.registry = registry
    lane.snapshots = snapshots
    lane.totals = totals
    lane.num_requests = int(totals.get("requests", 0))

    wall = 0.0
    per_shard = []
    for path, file in zip(shard_paths, files):
        for report in file.reports:
            wall = max(wall, report.get("wall_seconds", 0.0))
            per_shard.append(
                {
                    "path": path,
                    "watermark": report.get("extra", {}).get("watermark", 0),
                    "sustained_qps": report.get("extra", {}).get(
                        "sustained_qps", 0.0
                    ),
                    "num_requests": report.get("num_requests", 0),
                }
            )
    report = {
        "engine": "serve",
        "mode": "fleet",
        "wall_seconds": wall,
        "num_requests": int(totals.get("requests", 0)),
        "extra": {
            "watermark": watermark,
            "sustained_qps": sum(s["sustained_qps"] for s in per_shard),
            "router_restarts": router_restarts,
            "worker_restarts": list(worker_restarts or []),
            "per_shard": per_shard,
        },
    }
    return write_telemetry(out_path, telemetry, reports=[report])
