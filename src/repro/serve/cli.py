"""``repro-serve``: run the live decision daemon from the command line.

``--workers 1`` (the default) runs the single daemon exactly as PR 8
shipped it — same wire, same snapshot lineage.  ``--workers N`` (N>1)
runs the sharded fleet instead: this process becomes the supervisor
(:mod:`repro.serve.fleet`), which spawns N worker daemons (each one
re-entering this CLI with the hidden ``--shard``/``--num-shards``
flags) and the video-hash router (:mod:`repro.serve.router`) owning the
public endpoint.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional, Sequence, Tuple

from repro.cdn.sharding import DEFAULT_NUM_BUCKETS
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.sim.runner import CACHE_FACTORIES
from repro.trace.requests import DEFAULT_CHUNK_BYTES

__all__ = ["main"]


def _parse_tcp(value: str) -> Tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"--tcp needs HOST:PORT, got {value!r}"
        )
    return host, int(port)


def _worker_passthrough(args: argparse.Namespace) -> List[str]:
    """The argv tail every fleet worker shares (decision knobs only).

    Endpoints, snapshot dirs and telemetry paths are *derived* per
    shard by the fleet, never passed through.  ``--rate`` and
    ``--queue-limit`` are deliberately per-shard: each worker owns its
    own token bucket and bounded queue (DESIGN.md §14).
    """
    passthrough = [
        "--algorithm", args.algorithm,
        "--disk-chunks", str(args.disk_chunks),
        "--chunk-bytes", str(args.chunk_bytes),
        "--alpha", str(args.alpha),
        "--rate", str(args.rate),
        "--burst", str(args.burst),
        "--queue-limit", str(args.queue_limit),
        "--snapshot-every", str(args.snapshot_every),
        "--snapshot-keep", str(args.snapshot_keep),
        "--request-timeout", str(args.request_timeout),
        "--max-retries", str(args.max_retries),
        "--publish-interval", str(args.publish_interval),
    ]
    if args.test_hooks:
        passthrough.append("--test-hooks")
    if args.fault_rate > 0:
        passthrough += ["--fault-rate", str(args.fault_rate)]
    if args.fault_seed:
        passthrough += ["--fault-seed", str(args.fault_seed)]
    return passthrough


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Serve live serve/redirect decisions over a JSONL stream."""
    parser = argparse.ArgumentParser(prog="repro-serve", description=main.__doc__)
    endpoints = parser.add_argument_group("endpoints (at least one)")
    endpoints.add_argument(
        "--socket", metavar="PATH", default=None, help="unix socket to bind"
    )
    endpoints.add_argument(
        "--tcp", metavar="HOST:PORT", type=_parse_tcp, default=None
    )
    endpoints.add_argument(
        "--stdin",
        action="store_true",
        help="speak the protocol on stdin/stdout (EOF stops the daemon)",
    )
    parser.add_argument(
        "--algorithm",
        default="xLRU",
        choices=sorted(
            name
            for name, factory in CACHE_FACTORIES.items()
            if not getattr(factory, "offline", False)
        ),
    )
    parser.add_argument("--disk-chunks", type=int, default=4096)
    parser.add_argument("--chunk-bytes", type=int, default=DEFAULT_CHUNK_BYTES)
    parser.add_argument("--alpha", type=float, default=2.0, dest="alpha")
    parser.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="admission tokens/second, per worker (0 = unlimited)",
    )
    parser.add_argument("--burst", type=float, default=256.0)
    parser.add_argument("--queue-limit", type=int, default=1024)
    parser.add_argument(
        "--snapshot-dir",
        default=None,
        help="enable crash recovery: atomic watermarked snapshots here "
        "(sharded fleets use one subdirectory per shard)",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=5000,
        help="applied requests between periodic snapshots (0 = final only)",
    )
    parser.add_argument("--snapshot-keep", type=int, default=2)
    parser.add_argument("--request-timeout", type=float, default=5.0)
    parser.add_argument("--max-retries", type=int, default=3)
    parser.add_argument(
        "--publish-interval",
        type=float,
        default=1.0,
        help="seconds between telemetry pushes to subscribers (0 = off)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="OUT",
        default=None,
        help="write repro.obs JSONL telemetry at graceful shutdown "
        "(sharded fleets merge per-worker files into this path)",
    )
    sharding = parser.add_argument_group("sharded fleet")
    sharding.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; >1 runs the sharded fleet: one event "
        "loop per core, requests routed by video hash",
    )
    sharding.add_argument(
        "--num-buckets",
        type=int,
        default=DEFAULT_NUM_BUCKETS,
        help="video-hash bucket space for shard routing",
    )
    sharding.add_argument(
        "--run-dir",
        default=None,
        help="fleet scratch dir for worker sockets, logs and the "
        "pidfile (default: <socket>.fleet)",
    )
    sharding.add_argument(
        "--pidfile",
        default=None,
        help="atomic JSON role->pid map (default: <run-dir>/fleet.json)",
    )
    # hidden worker-mode flags: the fleet re-enters this CLI with the
    # shard coordinates; humans never pass these
    parser.add_argument("--shard", type=int, default=None, help=argparse.SUPPRESS)
    parser.add_argument(
        "--num-shards", type=int, default=None, help=argparse.SUPPRESS
    )
    parser.add_argument(
        "--test-hooks",
        action="store_true",
        help="enable test-only ops (crash-worker) and fault injection",
    )
    parser.add_argument("--fault-rate", type=float, default=0.0)
    parser.add_argument("--fault-seed", type=int, default=0)
    parser.add_argument(
        "--echo-events", action="store_true", help="echo events to stderr"
    )
    args = parser.parse_args(argv)

    if not (args.socket or args.tcp or args.stdin):
        parser.error("need at least one endpoint: --socket, --tcp or --stdin")
    if args.fault_rate > 0 and not args.test_hooks:
        parser.error("--fault-rate requires --test-hooks")
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if (args.shard is None) != (args.num_shards is None):
        parser.error("--shard and --num-shards go together")
    if args.shard is not None and args.workers > 1:
        parser.error("--shard is a worker-mode flag; it excludes --workers")

    if args.workers > 1:
        if args.stdin:
            parser.error("--stdin needs --workers 1 (one loop, one pipe)")
        from repro.obs.events import EventLog
        from repro.serve.fleet import FleetConfig, ServeFleet

        fleet = ServeFleet(
            FleetConfig(
                workers=args.workers,
                socket=args.socket,
                tcp=args.tcp,
                run_dir=args.run_dir,
                num_buckets=args.num_buckets,
                snapshot_dir=args.snapshot_dir,
                telemetry_path=args.telemetry,
                pidfile=args.pidfile,
                worker_args=tuple(_worker_passthrough(args)),
                echo_events=args.echo_events,
            ),
            events=EventLog(echo=args.echo_events),
        )
        return fleet.run()

    config = ServeConfig(
        algorithm=args.algorithm,
        disk_chunks=args.disk_chunks,
        chunk_bytes=args.chunk_bytes,
        alpha_f2r=args.alpha,
        rate=args.rate,
        burst=args.burst,
        queue_limit=args.queue_limit,
        snapshot_dir=args.snapshot_dir,
        snapshot_every=args.snapshot_every,
        snapshot_keep=args.snapshot_keep,
        request_timeout=args.request_timeout,
        max_retries=args.max_retries,
        publish_interval=args.publish_interval,
        telemetry_path=args.telemetry,
        test_hooks=args.test_hooks,
        fault_rate=args.fault_rate,
        fault_seed=args.fault_seed,
        shard_id=args.shard,
        num_shards=args.num_shards if args.num_shards is not None else 1,
        num_buckets=args.num_buckets,
    )

    from repro.obs.events import EventLog

    daemon = ServeDaemon(config, events=EventLog(echo=args.echo_events))
    try:
        return asyncio.run(
            daemon.run(unix_path=args.socket, tcp=args.tcp, stdio=args.stdin)
        )
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C race
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
