"""``repro-serve``: run the live decision daemon from the command line."""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional, Sequence, Tuple

from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.sim.runner import CACHE_FACTORIES
from repro.trace.requests import DEFAULT_CHUNK_BYTES

__all__ = ["main"]


def _parse_tcp(value: str) -> Tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"--tcp needs HOST:PORT, got {value!r}"
        )
    return host, int(port)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Serve live serve/redirect decisions over a JSONL stream."""
    parser = argparse.ArgumentParser(prog="repro-serve", description=main.__doc__)
    endpoints = parser.add_argument_group("endpoints (at least one)")
    endpoints.add_argument(
        "--socket", metavar="PATH", default=None, help="unix socket to bind"
    )
    endpoints.add_argument(
        "--tcp", metavar="HOST:PORT", type=_parse_tcp, default=None
    )
    endpoints.add_argument(
        "--stdin",
        action="store_true",
        help="speak the protocol on stdin/stdout (EOF stops the daemon)",
    )
    parser.add_argument(
        "--algorithm",
        default="xLRU",
        choices=sorted(
            name
            for name, factory in CACHE_FACTORIES.items()
            if not getattr(factory, "offline", False)
        ),
    )
    parser.add_argument("--disk-chunks", type=int, default=4096)
    parser.add_argument("--chunk-bytes", type=int, default=DEFAULT_CHUNK_BYTES)
    parser.add_argument("--alpha", type=float, default=2.0, dest="alpha")
    parser.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="admission tokens/second (0 = unlimited)",
    )
    parser.add_argument("--burst", type=float, default=256.0)
    parser.add_argument("--queue-limit", type=int, default=1024)
    parser.add_argument(
        "--snapshot-dir",
        default=None,
        help="enable crash recovery: atomic watermarked snapshots here",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=5000,
        help="applied requests between periodic snapshots (0 = final only)",
    )
    parser.add_argument("--snapshot-keep", type=int, default=2)
    parser.add_argument("--request-timeout", type=float, default=5.0)
    parser.add_argument("--max-retries", type=int, default=3)
    parser.add_argument(
        "--publish-interval",
        type=float,
        default=1.0,
        help="seconds between telemetry pushes to subscribers (0 = off)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="OUT",
        default=None,
        help="write repro.obs JSONL telemetry at graceful shutdown",
    )
    parser.add_argument(
        "--test-hooks",
        action="store_true",
        help="enable test-only ops (crash-worker) and fault injection",
    )
    parser.add_argument("--fault-rate", type=float, default=0.0)
    parser.add_argument("--fault-seed", type=int, default=0)
    parser.add_argument(
        "--echo-events", action="store_true", help="echo events to stderr"
    )
    args = parser.parse_args(argv)

    if not (args.socket or args.tcp or args.stdin):
        parser.error("need at least one endpoint: --socket, --tcp or --stdin")
    if args.fault_rate > 0 and not args.test_hooks:
        parser.error("--fault-rate requires --test-hooks")

    config = ServeConfig(
        algorithm=args.algorithm,
        disk_chunks=args.disk_chunks,
        chunk_bytes=args.chunk_bytes,
        alpha_f2r=args.alpha,
        rate=args.rate,
        burst=args.burst,
        queue_limit=args.queue_limit,
        snapshot_dir=args.snapshot_dir,
        snapshot_every=args.snapshot_every,
        snapshot_keep=args.snapshot_keep,
        request_timeout=args.request_timeout,
        max_retries=args.max_retries,
        publish_interval=args.publish_interval,
        telemetry_path=args.telemetry,
        test_hooks=args.test_hooks,
        fault_rate=args.fault_rate,
        fault_seed=args.fault_seed,
    )

    from repro.obs.events import EventLog

    daemon = ServeDaemon(config, events=EventLog(echo=args.echo_events))
    try:
        return asyncio.run(
            daemon.run(unix_path=args.socket, tcp=args.tcp, stdio=args.stdin)
        )
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C race
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
