"""The ``repro-serve`` wire protocol: JSONL requests, JSONL responses.

One line in, one line out.  Clients send either a *decision request*
(the trace-file schema plus an optional exactly-once sequence number)
or an *operation*::

    {"seq": 17, "t": 123.5, "video": 42, "b0": 0, "b1": 1048575}
    {"op": "hello"}

and receive exactly one JSON response line per input line.  Responses
always carry ``ok`` (bool); failures add a machine-readable ``error``
code from :data:`ERROR_CODES` so clients can branch without parsing
prose.  Malformed lines produce an ``ok=false`` *response*, never a
connection teardown — a misbehaving producer cannot take the daemon
down (DESIGN.md §13's failure matrix).

**Exactly-once accounting.**  ``seq`` numbers are assigned by the
client, contiguous from 1.  The daemon applies ``seq == watermark + 1``
only: a lower seq is acknowledged as a ``duplicate`` (not re-applied,
not re-counted), a higher seq is a ``sequence-gap`` error (not
applied).  After a crash the client asks ``hello`` for the restored
watermark and resends from ``watermark + 1`` — replayed requests land
exactly once no matter where the crash fell relative to the last
snapshot.

:func:`decide_and_account` is the *single* implementation of
decision + traffic accounting, shared by the live daemon and the
offline batch comparator, so "daemon totals == batch totals" holds by
construction rather than by parallel maintenance.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from repro.core.base import Decision, VideoCache

__all__ = [
    "ERROR_CODES",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "parse_line",
    "decision_response",
    "duplicate_response",
    "error_response",
    "shed_response",
    "decide_and_account",
    "new_totals",
]

#: Wire protocol version.  Version 1 is the single-worker daemon of
#: DESIGN.md §13; version 2 adds the sharded router handshake
#: (``hello`` gains ``workers``/``num_buckets``/``shards`` and ``seq``
#: becomes per-shard contiguous when ``workers > 1``).  A ``--workers
#: 1`` daemon still speaks version 1 unchanged — that is the documented
#: downgrade path for clients that assign one global sequence.
PROTOCOL_VERSION = 2

#: Operations a client may issue instead of a decision request.
OPS = (
    "hello",      # identify the daemon; returns watermark + config
    "stats",      # totals, counters, latency quantiles, watermark
    "snapshot",   # force a cache snapshot now; returns its watermark
    "subscribe",  # turn this connection into a telemetry subscriber
    "shutdown",   # graceful stop: drain, snapshot, flush telemetry
    "crash-worker",  # test hook (only honored with --test-hooks)
)

#: Machine-readable failure codes responses may carry.
ERROR_CODES = (
    "malformed",       # unparseable/invalid line (counted, skipped)
    "overloaded",      # load shed at admission; retry_after included
    "sequence-gap",    # seq beyond watermark+1; resend from watermark+1
    "stale-timestamp", # t went backwards; consumed but not applied
    "decision-failed", # transient failure survived all retries
    "timeout",         # per-request deadline exceeded
    "unsupported",     # unknown op, or op not enabled
    "misrouted",       # video does not hash to this shard (not applied)
    "worker-down",     # a fan-out op could not reach a worker shard
)


class ProtocolError(Exception):
    """A structured, per-line protocol failure (never fatal)."""

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail


def parse_line(line: str) -> dict:
    """Parse one wire line into a validated request or op dict.

    Returns ``{"type": "op", "op": ...}`` or ``{"type": "request",
    "seq": int | None, "t": float, "video": int, "b0": int, "b1":
    int}``.  Raises :class:`ProtocolError` (code ``malformed`` or
    ``unsupported``) on anything else; the caller turns that into an
    error *response*, not a disconnect.
    """
    text = line.strip()
    if not text:
        raise ProtocolError("malformed", "empty line")
    try:
        obj = json.loads(text)
    except ValueError as exc:
        raise ProtocolError("malformed", f"invalid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            "malformed", f"expected an object, got {type(obj).__name__}"
        )

    if "op" in obj:
        op = obj["op"]
        if op not in OPS:
            raise ProtocolError("unsupported", f"unknown op {op!r}")
        return {"type": "op", "op": op}

    try:
        t = obj["t"]
        video = obj["video"]
        b0 = obj["b0"]
        b1 = obj["b1"]
    except KeyError as exc:
        raise ProtocolError("malformed", f"missing field {exc.args[0]!r}") from None
    if isinstance(t, bool) or not isinstance(t, (int, float)):
        raise ProtocolError("malformed", f"t must be a number, got {t!r}")
    for name, value in (("video", video), ("b0", b0), ("b1", b1)):
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(
                "malformed", f"{name} must be an integer, got {value!r}"
            )
    if video < 0 or b0 < 0 or b1 < b0:
        raise ProtocolError(
            "malformed", f"need video >= 0 and 0 <= b0 <= b1, got {text}"
        )
    seq = obj.get("seq")
    if seq is not None and (
        isinstance(seq, bool) or not isinstance(seq, int) or seq < 1
    ):
        raise ProtocolError("malformed", f"seq must be an integer >= 1, got {seq!r}")
    return {
        "type": "request",
        "seq": seq,
        "t": float(t),
        "video": video,
        "b0": b0,
        "b1": b1,
    }


# -- response builders ---------------------------------------------------------


def decision_response(seq: int, fields: Dict) -> dict:
    out = {"ok": True, "kind": "decision", "seq": seq}
    out.update(fields)
    return out


def duplicate_response(seq: int, watermark: int) -> dict:
    return {"ok": True, "kind": "duplicate", "seq": seq, "watermark": watermark}


def error_response(
    code: str, detail: str, seq: Optional[int] = None
) -> dict:
    out: dict = {"ok": False, "error": code, "detail": detail}
    if seq is not None:
        out["seq"] = seq
    return out


def shed_response(retry_after: float, detail: str = "admission shed") -> dict:
    """The structured overload answer, with a Retry-After hint (s)."""
    return {
        "ok": False,
        "error": "overloaded",
        "detail": detail,
        "retry_after": round(max(retry_after, 0.0), 6),
    }


# -- shared decision accounting ------------------------------------------------


def new_totals() -> Dict[str, int]:
    """A zeroed traffic-totals dict (every field is an exact int)."""
    return {
        "requests": 0,
        "served": 0,
        "hits": 0,
        "redirected": 0,
        "rejected_stale": 0,
        "filled_chunks": 0,
        "evicted_chunks": 0,
        "requested_bytes": 0,
    }


def decide_and_account(
    cache: VideoCache,
    totals: Dict[str, int],
    t: float,
    video: int,
    b0: int,
    b1: int,
    last_t: float,
) -> Tuple[dict, float]:
    """Apply one request to ``cache`` and fold it into ``totals``.

    Returns ``(response_fields, new_last_t)``.  Timestamps must be
    non-decreasing; a request whose ``t`` went backwards is *consumed*
    (it advances the watermark and is counted under
    ``rejected_stale``) but never touches the cache — both the daemon
    and the batch comparator apply this rule, so totals stay
    byte-identical across them.
    """
    if t < last_t:
        totals["requests"] += 1
        totals["rejected_stale"] += 1
        return (
            {
                "decision": "rejected",
                "error": "stale-timestamp",
                "detail": f"t={t!r} is before the stream clock {last_t!r}",
            },
            last_t,
        )
    k = cache.chunk_bytes
    response = cache.handle_span(t, video, b0, b1, b0 // k, b1 // k)
    totals["requests"] += 1
    totals["requested_bytes"] += b1 - b0 + 1
    if response.decision is Decision.SERVE:
        totals["served"] += 1
        if response.filled_chunks == 0:
            totals["hits"] += 1
        totals["filled_chunks"] += response.filled_chunks
        totals["evicted_chunks"] += response.evicted_chunks
        fields = {
            "decision": "serve",
            "filled_chunks": response.filled_chunks,
            "evicted_chunks": response.evicted_chunks,
        }
    else:
        totals["redirected"] += 1
        fields = {"decision": "redirect"}
    return fields, t
