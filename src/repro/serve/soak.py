"""Fault-soak harness: traffic + kills against a live ``repro-serve``.

The soak replays a (diurnal) trace against a daemon subprocess while a
seeded :class:`~repro.cdn.faults.FaultSchedule` of ``restart`` events
SIGKILLs and restarts it mid-run, injecting malformed lines along the
way.  The pass criterion is exactness, not survival alone: the final
traffic totals must be **byte-identical** to an uninterrupted batch
replay of the same trace (both sides run
:func:`repro.serve.protocol.decide_and_account`), the request-sequence
watermark must equal the trace length (nothing double-counted, nothing
lost), and every malformed line must have been answered.

Runnable directly — the CI ``serve-smoke`` job and ``make serve-soak``
both call ``python -m repro.serve.soak``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cdn.faults import FaultEvent, FaultSchedule
from repro.serve.client import ServeClient, connect_with_retry
from repro.serve.daemon import ServeConfig
from repro.serve.protocol import decide_and_account, new_totals
from repro.sim.runner import build_cache
from repro.trace.requests import Request

__all__ = [
    "DaemonProcess",
    "SoakOutcome",
    "batch_totals",
    "kill_schedule",
    "run_soak",
    "main",
]


def batch_totals(config: ServeConfig, requests: Sequence[Request]) -> Dict[str, int]:
    """The uninterrupted batch replay the daemon must match exactly."""
    cache = build_cache(
        config.algorithm,
        config.disk_chunks,
        alpha_f2r=config.alpha_f2r,
        chunk_bytes=config.chunk_bytes,
    )
    totals = new_totals()
    last_t = float("-inf")
    for r in requests:
        _, last_t = decide_and_account(
            cache, totals, r.t, r.video, r.b0, r.b1, last_t
        )
    return totals


def kill_schedule(
    requests: Sequence[Request], restarts: int, seed: int
) -> FaultSchedule:
    """Seeded restart events inside the middle 80% of the trace span."""
    events: List[FaultEvent] = []
    if restarts > 0 and len(requests) >= 2:
        rng = random.Random(seed)
        t0, t1 = requests[0].t, requests[-1].t
        span = max(t1 - t0, 1.0)
        for _ in range(restarts):
            events.append(
                FaultEvent(
                    kind="restart",
                    server="serve",
                    t=t0 + span * rng.uniform(0.1, 0.9),
                    duration=1.0,
                )
            )
    return FaultSchedule(events, seed=seed)


class DaemonProcess:
    """A ``repro-serve`` subprocess bound to one unix socket."""

    def __init__(
        self,
        socket_path: str,
        config: ServeConfig,
        telemetry_path: Optional[str] = None,
    ) -> None:
        self.socket_path = socket_path
        self.config = config
        self.telemetry_path = telemetry_path
        self.proc: Optional[subprocess.Popen] = None
        self.starts = 0

    def args(self) -> List[str]:
        config = self.config
        argv = [
            sys.executable,
            "-m",
            "repro.serve.cli",
            "--socket",
            self.socket_path,
            "--algorithm",
            config.algorithm,
            "--disk-chunks",
            str(config.disk_chunks),
            "--chunk-bytes",
            str(config.chunk_bytes),
            "--alpha",
            str(config.alpha_f2r),
            "--rate",
            str(config.rate),
            "--queue-limit",
            str(config.queue_limit),
            "--snapshot-every",
            str(config.snapshot_every),
            "--publish-interval",
            str(config.publish_interval),
        ]
        if config.snapshot_dir:
            argv += ["--snapshot-dir", config.snapshot_dir]
        if self.telemetry_path:
            argv += ["--telemetry", self.telemetry_path]
        if config.test_hooks:
            argv += ["--test-hooks"]
        return argv

    def start(self) -> None:
        # stale socket from a SIGKILLed predecessor must not block bind
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        self.proc = subprocess.Popen(self.args())
        self.starts += 1

    def kill(self) -> None:
        """SIGKILL — the crash the snapshot watermark must survive."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait(timeout=30)

    def wait(self, timeout: float = 30.0) -> Optional[int]:
        if self.proc is None:
            return None
        return self.proc.wait(timeout=timeout)

    def connect(self, retry_for: float = 20.0) -> ServeClient:
        return connect_with_retry(self.socket_path, retry_for=retry_for)


@dataclass
class SoakOutcome:
    """What one soak run produced (see :func:`run_soak`)."""

    sent: int = 0
    watermark: int = 0
    restarts: int = 0
    resumed_restarts: int = 0
    malformed_sent: int = 0
    malformed_acked: int = 0
    shed: int = 0
    duplicates: int = 0
    recoveries: int = 0
    totals: Dict[str, int] = field(default_factory=dict)
    batch: Dict[str, int] = field(default_factory=dict)
    stats: dict = field(default_factory=dict)

    @property
    def exact(self) -> bool:
        return self.totals == self.batch and self.watermark == self.sent

    @property
    def ok(self) -> bool:
        return self.exact and self.malformed_acked == self.malformed_sent

    def describe(self) -> str:
        lines = [
            f"soak: {self.sent} requests, {self.restarts} kill(s) "
            f"({self.resumed_restarts} warm resume(s)), "
            f"{self.malformed_sent} malformed line(s) "
            f"({self.malformed_acked} acked), {self.duplicates} duplicate "
            f"ack(s), {self.shed} shed, {self.recoveries} recover(ies)",
            f"watermark: {self.watermark} (expected {self.sent})",
            f"totals exact vs batch replay: {self.totals == self.batch}",
        ]
        if self.totals != self.batch:
            for key in sorted(set(self.totals) | set(self.batch)):
                a, b = self.totals.get(key), self.batch.get(key)
                if a != b:
                    lines.append(f"  MISMATCH {key}: daemon={a} batch={b}")
        return "\n".join(lines)


_MALFORMED_LINE = '{"t": "not-a-number", "video": -3'


def run_soak(
    requests: Sequence[Request],
    config: ServeConfig,
    restarts: int = 1,
    fault_seed: int = 20140413,
    malformed_every: int = 0,
    window: int = 256,
    socket_path: Optional[str] = None,
    telemetry_path: Optional[str] = None,
    progress: bool = False,
) -> SoakOutcome:
    """Drive the full soak; returns the outcome (caller asserts ``.ok``).

    ``requests`` must be time-sorted.  ``config.snapshot_dir`` should
    be set when ``restarts > 0`` — without it a kill falls back to a
    cold start, which is still *exact* (the client resends everything)
    but no longer tests warm recovery.
    """
    outcome = SoakOutcome(sent=len(requests), restarts=0)
    outcome.batch = batch_totals(config, requests)

    schedule = kill_schedule(requests, restarts, fault_seed)
    kill_times = [event.t for event in schedule.events if event.kind == "restart"]

    with tempfile.TemporaryDirectory(prefix="repro-serve-soak-") as workdir:
        sock = socket_path or os.path.join(workdir, "serve.sock")
        daemon = DaemonProcess(sock, config, telemetry_path=telemetry_path)
        daemon.start()
        client = daemon.connect()
        hello = client.hello()
        next_seq = hello["watermark"] + 1
        kill_index = 0
        since_malformed = 0

        try:
            while next_seq <= len(requests):
                # the fault schedule fires between windows: SIGKILL,
                # restart, reconnect, resume from the restored watermark
                if (
                    kill_index < len(kill_times)
                    and requests[next_seq - 1].t >= kill_times[kill_index]
                ):
                    kill_index += 1
                    outcome.restarts += 1
                    client.close()
                    daemon.kill()
                    daemon.start()
                    client = daemon.connect()
                    hello = client.hello()
                    if hello.get("resumed"):
                        outcome.resumed_restarts += 1
                    next_seq = hello["watermark"] + 1
                    if progress:
                        print(
                            f"  killed + restarted at seq {next_seq - 1} "
                            f"(warm={hello.get('resumed')})",
                            file=sys.stderr,
                        )

                count = min(window, len(requests) - next_seq + 1)
                if kill_index < len(kill_times):
                    # never let a window jump past a pending kill: clamp
                    # it to the requests before the kill time so the
                    # next loop iteration fires the restart
                    boundary = kill_times[kill_index]
                    ahead = 0
                    while (
                        ahead < count
                        and requests[next_seq - 1 + ahead].t < boundary
                    ):
                        ahead += 1
                    count = max(ahead, 1)
                injected = 0
                try:
                    for offset in range(count):
                        r = requests[next_seq - 1 + offset]
                        client.send(
                            {
                                "seq": next_seq + offset,
                                "t": r.t,
                                "video": r.video,
                                "b0": r.b0,
                                "b1": r.b1,
                            }
                        )
                        since_malformed += 1
                        if malformed_every and since_malformed >= malformed_every:
                            since_malformed = 0
                            injected += 1
                            outcome.malformed_sent += 1
                            client.send_raw(_MALFORMED_LINE)
                    client.flush()
                    retry_after = 0.0
                    clean = True
                    for _ in range(count + injected):
                        response = client.read_response()
                        if response.get("ok"):
                            if response.get("kind") == "duplicate":
                                outcome.duplicates += 1
                            continue
                        code = response.get("error")
                        if code == "malformed":
                            outcome.malformed_acked += 1
                            continue
                        clean = False
                        if code == "overloaded":
                            outcome.shed += 1
                            retry_after = max(
                                retry_after, response.get("retry_after", 0.0)
                            )
                    if clean:
                        next_seq += count
                    else:
                        # something was shed/gapped/failed: the watermark
                        # is the one source of truth for where to resume
                        if retry_after > 0:
                            time.sleep(min(retry_after, 1.0))
                        next_seq = client.hello()["watermark"] + 1
                        outcome.recoveries += 1
                except (ConnectionError, OSError, ValueError):
                    # daemon died mid-window (or a kill raced us):
                    # reconnect — possibly to a restarted process — and
                    # resume from its watermark
                    client.close()
                    if daemon.proc is not None and daemon.proc.poll() is not None:
                        daemon.start()
                        outcome.restarts += 1
                    client = daemon.connect()
                    hello = client.hello()
                    if hello.get("resumed"):
                        outcome.resumed_restarts += 1
                    next_seq = hello["watermark"] + 1
                    outcome.recoveries += 1

            stats = client.stats()
            outcome.stats = stats
            outcome.watermark = stats["watermark"]
            outcome.totals = {k: int(v) for k, v in stats["totals"].items()}
            client.shutdown()
            client.close()
            daemon.wait()
        finally:
            try:
                daemon.kill()
            except Exception:
                pass
    return outcome


def _generate(server: str, scale: float, days: float, seed: int) -> List[Request]:
    from repro.workload.generator import TraceGenerator
    from repro.workload.servers import SERVER_PROFILES

    profile = SERVER_PROFILES[server].scaled(scale)
    return list(TraceGenerator(profile, seed=seed).generate(days=days))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Soak/smoke a live daemon against the batch replay (exactness gate)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.soak", description=main.__doc__
    )
    parser.add_argument("--trace", default=None, help="replay this trace file")
    parser.add_argument(
        "--server", default="europe", help="generated-trace profile"
    )
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--days", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--requests", type=int, default=None, help="truncate the trace"
    )
    parser.add_argument("--algorithm", default="xLRU")
    parser.add_argument("--disk-chunks", type=int, default=2048)
    parser.add_argument("--alpha", type=float, default=2.0)
    parser.add_argument(
        "--restarts", type=int, default=1, help="seeded SIGKILL count"
    )
    parser.add_argument("--fault-seed", type=int, default=20140413)
    parser.add_argument(
        "--malformed-every",
        type=int,
        default=0,
        help="inject one malformed line every N requests",
    )
    parser.add_argument("--window", type=int, default=256)
    parser.add_argument("--snapshot-every", type=int, default=1000)
    parser.add_argument(
        "--telemetry", default=None, help="daemon telemetry JSONL output"
    )
    args = parser.parse_args(argv)

    if args.trace:
        from repro.trace.io import read_trace_csv, read_trace_jsonl

        reader = read_trace_jsonl if ".jsonl" in args.trace else read_trace_csv
        requests = list(reader(args.trace))
    else:
        requests = _generate(args.server, args.scale, args.days, args.seed)
    if args.requests is not None:
        requests = requests[: args.requests]
    if not requests:
        print("empty trace", file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory(prefix="repro-serve-snap-") as snapdir:
        config = ServeConfig(
            algorithm=args.algorithm,
            disk_chunks=args.disk_chunks,
            alpha_f2r=args.alpha,
            snapshot_dir=snapdir,
            snapshot_every=args.snapshot_every,
            publish_interval=0.5,
        )
        t0 = time.perf_counter()
        outcome = run_soak(
            requests,
            config,
            restarts=args.restarts,
            fault_seed=args.fault_seed,
            malformed_every=args.malformed_every,
            window=args.window,
            telemetry_path=args.telemetry,
            progress=True,
        )
        wall = time.perf_counter() - t0

    print(outcome.describe())
    print(
        f"wall: {wall:.1f}s "
        f"({outcome.sent / wall:,.0f} req/s end-to-end incl. restarts)"
    )
    if args.telemetry:
        print(f"telemetry: {args.telemetry}")
    if not outcome.ok:
        print("SOAK FAILED", file=sys.stderr)
        print(json.dumps({"totals": outcome.totals, "batch": outcome.batch}))
        return 1
    print("soak ok: totals byte-identical, watermark exact")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
