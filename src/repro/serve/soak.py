"""Fault-soak harness: traffic + kills against a live ``repro-serve``.

The soak replays a (diurnal) trace against a daemon subprocess while a
seeded :class:`~repro.cdn.faults.FaultSchedule` of ``restart`` events
SIGKILLs and restarts it mid-run, injecting malformed lines along the
way.  The pass criterion is exactness, not survival alone: the final
traffic totals must be **byte-identical** to an uninterrupted batch
replay of the same trace (both sides run
:func:`repro.serve.protocol.decide_and_account`), the request-sequence
watermark must equal the trace length (nothing double-counted, nothing
lost), and every malformed line must have been answered.

Runnable directly — the CI ``serve-smoke`` job and ``make serve-soak``
both call ``python -m repro.serve.soak``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cdn.faults import FaultEvent, FaultSchedule
from repro.cdn.sharding import DEFAULT_NUM_BUCKETS, shard_of
from repro.serve.client import ServeClient, connect_with_retry
from repro.serve.daemon import ServeConfig
from repro.serve.protocol import decide_and_account, new_totals
from repro.sim.runner import build_cache
from repro.trace.requests import Request

__all__ = [
    "DaemonProcess",
    "FleetProcess",
    "SoakOutcome",
    "batch_totals",
    "kill_schedule",
    "run_soak",
    "run_sharded_soak",
    "shard_plan",
    "sharded_batch_totals",
    "main",
]


def batch_totals(config: ServeConfig, requests: Sequence[Request]) -> Dict[str, int]:
    """The uninterrupted batch replay the daemon must match exactly."""
    cache = build_cache(
        config.algorithm,
        config.disk_chunks,
        alpha_f2r=config.alpha_f2r,
        chunk_bytes=config.chunk_bytes,
    )
    totals = new_totals()
    last_t = float("-inf")
    for r in requests:
        _, last_t = decide_and_account(
            cache, totals, r.t, r.video, r.b0, r.b1, last_t
        )
    return totals


def shard_plan(
    requests: Sequence[Request],
    workers: int,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
):
    """Precomputed per-shard routing/sequencing of one trace.

    Returns ``(shards, seqs, positions)`` where ``shards[i]`` is the
    owning shard of request ``i``, ``seqs[i]`` its 1-based per-shard
    sequence number (the seq a sharded client must attach — fixed for
    the whole soak, resends included), and ``positions[k][n]`` the
    global index of shard ``k``'s ``(n+1)``-th request (the resume
    cursor map: after a crash, replay restarts at the minimum over
    shards of ``positions[k][watermark_k]``).
    """
    shards: List[int] = []
    seqs: List[int] = []
    positions: List[List[int]] = [[] for _ in range(workers)]
    for index, r in enumerate(requests):
        shard = shard_of(r.video, workers, num_buckets)
        shards.append(shard)
        positions[shard].append(index)
        seqs.append(len(positions[shard]))
    return shards, seqs, positions


def sharded_batch_totals(
    config: ServeConfig,
    requests: Sequence[Request],
    workers: int,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
) -> Dict[str, int]:
    """The uninterrupted *sharded* replay the fleet must match exactly.

    N independent caches (one per shard, each sized ``disk_chunks``
    like its live counterpart), each with its own stale-timestamp
    cursor, fed through the same :func:`shard_of` routing the router
    applies — then totals summed.  This is the fleet's ground truth;
    it intentionally differs from the single-cache :func:`batch_totals`
    (different cache partitioning ⇒ different hit patterns).
    """
    caches = [
        build_cache(
            config.algorithm,
            config.disk_chunks,
            alpha_f2r=config.alpha_f2r,
            chunk_bytes=config.chunk_bytes,
        )
        for _ in range(workers)
    ]
    per_shard = [new_totals() for _ in range(workers)]
    last_t = [float("-inf")] * workers
    for r in requests:
        shard = shard_of(r.video, workers, num_buckets)
        _, last_t[shard] = decide_and_account(
            caches[shard], per_shard[shard], r.t, r.video, r.b0, r.b1,
            last_t[shard],
        )
    totals: Dict[str, int] = {}
    for shard_totals in per_shard:
        for key, value in shard_totals.items():
            totals[key] = totals.get(key, 0) + value
    return totals


def kill_schedule(
    requests: Sequence[Request], restarts: int, seed: int
) -> FaultSchedule:
    """Seeded restart events inside the middle 80% of the trace span."""
    events: List[FaultEvent] = []
    if restarts > 0 and len(requests) >= 2:
        rng = random.Random(seed)
        t0, t1 = requests[0].t, requests[-1].t
        span = max(t1 - t0, 1.0)
        for _ in range(restarts):
            events.append(
                FaultEvent(
                    kind="restart",
                    server="serve",
                    t=t0 + span * rng.uniform(0.1, 0.9),
                    duration=1.0,
                )
            )
    return FaultSchedule(events, seed=seed)


class DaemonProcess:
    """A ``repro-serve`` subprocess bound to one unix socket."""

    def __init__(
        self,
        socket_path: str,
        config: ServeConfig,
        telemetry_path: Optional[str] = None,
    ) -> None:
        self.socket_path = socket_path
        self.config = config
        self.telemetry_path = telemetry_path
        self.proc: Optional[subprocess.Popen] = None
        self.starts = 0

    def args(self) -> List[str]:
        config = self.config
        argv = [
            sys.executable,
            "-m",
            "repro.serve.cli",
            "--socket",
            self.socket_path,
            "--algorithm",
            config.algorithm,
            "--disk-chunks",
            str(config.disk_chunks),
            "--chunk-bytes",
            str(config.chunk_bytes),
            "--alpha",
            str(config.alpha_f2r),
            "--rate",
            str(config.rate),
            "--queue-limit",
            str(config.queue_limit),
            "--snapshot-every",
            str(config.snapshot_every),
            "--publish-interval",
            str(config.publish_interval),
        ]
        if config.snapshot_dir:
            argv += ["--snapshot-dir", config.snapshot_dir]
        if self.telemetry_path:
            argv += ["--telemetry", self.telemetry_path]
        if config.test_hooks:
            argv += ["--test-hooks"]
        return argv

    def start(self) -> None:
        # stale socket from a SIGKILLed predecessor must not block bind
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        self.proc = subprocess.Popen(self.args())
        self.starts += 1

    def kill(self) -> None:
        """SIGKILL — the crash the snapshot watermark must survive."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait(timeout=30)

    def wait(self, timeout: float = 30.0) -> Optional[int]:
        if self.proc is None:
            return None
        return self.proc.wait(timeout=timeout)

    def connect(self, retry_for: float = 20.0) -> ServeClient:
        return connect_with_retry(self.socket_path, retry_for=retry_for)


class FleetProcess:
    """A ``repro-serve --workers N`` supervisor tree on one unix socket.

    The supervisor's pidfile names every role's live pid, so the soak
    can SIGKILL a *specific* worker or the router — the two fleet
    deaths the acceptance gate requires — and let the supervisor's
    restart logic (not the harness) bring the victim back.
    """

    def __init__(
        self,
        socket_path: str,
        run_dir: str,
        config: ServeConfig,
        workers: int,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        telemetry_path: Optional[str] = None,
    ) -> None:
        self.socket_path = socket_path
        self.run_dir = run_dir
        self.config = config
        self.workers = workers
        self.num_buckets = num_buckets
        self.telemetry_path = telemetry_path
        self.pidfile = os.path.join(run_dir, "fleet.json")
        self.proc: Optional[subprocess.Popen] = None

    def args(self) -> List[str]:
        config = self.config
        argv = [
            sys.executable,
            "-m",
            "repro.serve.cli",
            "--socket",
            self.socket_path,
            "--workers",
            str(self.workers),
            "--num-buckets",
            str(self.num_buckets),
            "--run-dir",
            self.run_dir,
            "--algorithm",
            config.algorithm,
            "--disk-chunks",
            str(config.disk_chunks),
            "--chunk-bytes",
            str(config.chunk_bytes),
            "--alpha",
            str(config.alpha_f2r),
            "--rate",
            str(config.rate),
            "--queue-limit",
            str(config.queue_limit),
            "--snapshot-every",
            str(config.snapshot_every),
            "--publish-interval",
            str(config.publish_interval),
        ]
        if config.snapshot_dir:
            argv += ["--snapshot-dir", config.snapshot_dir]
        if self.telemetry_path:
            argv += ["--telemetry", self.telemetry_path]
        if config.test_hooks:
            argv += ["--test-hooks"]
        return argv

    def start(self) -> None:
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        self.proc = subprocess.Popen(self.args())

    def pidmap(self, retry_for: float = 20.0) -> dict:
        """The supervisor's role->pid map, waiting out startup races."""
        deadline = time.monotonic() + retry_for
        while True:
            try:
                with open(self.pidfile, "r", encoding="utf-8") as stream:
                    return json.load(stream)
            except (OSError, json.JSONDecodeError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    def _sigkill(self, pid: Optional[int]) -> bool:
        if not pid:
            return False
        try:
            os.kill(pid, signal.SIGKILL)
            return True
        except (ProcessLookupError, OSError):
            return False

    def kill_worker(self, shard: int) -> bool:
        """SIGKILL one worker; the supervisor warm-restarts it alone."""
        entries = self.pidmap().get("workers", [])
        for entry in entries:
            if entry.get("shard") == shard:
                return self._sigkill(entry.get("pid"))
        return False

    def kill_router(self) -> bool:
        """SIGKILL the router; stateless, so nothing is lost."""
        return self._sigkill(self.pidmap().get("router", {}).get("pid"))

    def connect(self, retry_for: float = 30.0) -> ServeClient:
        return connect_with_retry(self.socket_path, retry_for=retry_for)

    def wait(self, timeout: float = 60.0) -> Optional[int]:
        if self.proc is None:
            return None
        return self.proc.wait(timeout=timeout)

    def terminate(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=30)


@dataclass
class SoakOutcome:
    """What one soak run produced (see :func:`run_soak`)."""

    sent: int = 0
    watermark: int = 0
    restarts: int = 0
    resumed_restarts: int = 0
    #: sharded-soak extras (zero / empty in single-daemon soaks)
    workers: int = 1
    worker_kills: int = 0
    router_kills: int = 0
    malformed_sent: int = 0
    malformed_acked: int = 0
    shed: int = 0
    duplicates: int = 0
    recoveries: int = 0
    totals: Dict[str, int] = field(default_factory=dict)
    batch: Dict[str, int] = field(default_factory=dict)
    stats: dict = field(default_factory=dict)

    @property
    def exact(self) -> bool:
        return self.totals == self.batch and self.watermark == self.sent

    @property
    def ok(self) -> bool:
        return self.exact and self.malformed_acked == self.malformed_sent

    def describe(self) -> str:
        lines = [
            f"soak: {self.sent} requests, {self.restarts} kill(s) "
            + (
                f"[{self.workers} workers: {self.worker_kills} worker, "
                f"{self.router_kills} router] "
                if self.workers > 1
                else ""
            )
            + f"({self.resumed_restarts} warm resume(s)), "
            f"{self.malformed_sent} malformed line(s) "
            f"({self.malformed_acked} acked), {self.duplicates} duplicate "
            f"ack(s), {self.shed} shed, {self.recoveries} recover(ies)",
            f"watermark: {self.watermark} (expected {self.sent})",
            f"totals exact vs batch replay: {self.totals == self.batch}",
        ]
        if self.totals != self.batch:
            for key in sorted(set(self.totals) | set(self.batch)):
                a, b = self.totals.get(key), self.batch.get(key)
                if a != b:
                    lines.append(f"  MISMATCH {key}: daemon={a} batch={b}")
        return "\n".join(lines)


_MALFORMED_LINE = '{"t": "not-a-number", "video": -3'


def run_soak(
    requests: Sequence[Request],
    config: ServeConfig,
    restarts: int = 1,
    fault_seed: int = 20140413,
    malformed_every: int = 0,
    window: int = 256,
    socket_path: Optional[str] = None,
    telemetry_path: Optional[str] = None,
    progress: bool = False,
) -> SoakOutcome:
    """Drive the full soak; returns the outcome (caller asserts ``.ok``).

    ``requests`` must be time-sorted.  ``config.snapshot_dir`` should
    be set when ``restarts > 0`` — without it a kill falls back to a
    cold start, which is still *exact* (the client resends everything)
    but no longer tests warm recovery.
    """
    outcome = SoakOutcome(sent=len(requests), restarts=0)
    outcome.batch = batch_totals(config, requests)

    schedule = kill_schedule(requests, restarts, fault_seed)
    kill_times = [event.t for event in schedule.events if event.kind == "restart"]

    with tempfile.TemporaryDirectory(prefix="repro-serve-soak-") as workdir:
        sock = socket_path or os.path.join(workdir, "serve.sock")
        daemon = DaemonProcess(sock, config, telemetry_path=telemetry_path)
        daemon.start()
        client = daemon.connect()
        hello = client.hello()
        next_seq = hello["watermark"] + 1
        kill_index = 0
        since_malformed = 0

        try:
            while next_seq <= len(requests):
                # the fault schedule fires between windows: SIGKILL,
                # restart, reconnect, resume from the restored watermark
                if (
                    kill_index < len(kill_times)
                    and requests[next_seq - 1].t >= kill_times[kill_index]
                ):
                    kill_index += 1
                    outcome.restarts += 1
                    client.close()
                    daemon.kill()
                    daemon.start()
                    client = daemon.connect()
                    hello = client.hello()
                    if hello.get("resumed"):
                        outcome.resumed_restarts += 1
                    next_seq = hello["watermark"] + 1
                    if progress:
                        print(
                            f"  killed + restarted at seq {next_seq - 1} "
                            f"(warm={hello.get('resumed')})",
                            file=sys.stderr,
                        )

                count = min(window, len(requests) - next_seq + 1)
                if kill_index < len(kill_times):
                    # never let a window jump past a pending kill: clamp
                    # it to the requests before the kill time so the
                    # next loop iteration fires the restart
                    boundary = kill_times[kill_index]
                    ahead = 0
                    while (
                        ahead < count
                        and requests[next_seq - 1 + ahead].t < boundary
                    ):
                        ahead += 1
                    count = max(ahead, 1)
                injected = 0
                try:
                    for offset in range(count):
                        r = requests[next_seq - 1 + offset]
                        client.send(
                            {
                                "seq": next_seq + offset,
                                "t": r.t,
                                "video": r.video,
                                "b0": r.b0,
                                "b1": r.b1,
                            }
                        )
                        since_malformed += 1
                        if malformed_every and since_malformed >= malformed_every:
                            since_malformed = 0
                            injected += 1
                            outcome.malformed_sent += 1
                            client.send_raw(_MALFORMED_LINE)
                    client.flush()
                    retry_after = 0.0
                    clean = True
                    for _ in range(count + injected):
                        response = client.read_response()
                        if response.get("ok"):
                            if response.get("kind") == "duplicate":
                                outcome.duplicates += 1
                            continue
                        code = response.get("error")
                        if code == "malformed":
                            outcome.malformed_acked += 1
                            continue
                        clean = False
                        if code == "overloaded":
                            outcome.shed += 1
                            retry_after = max(
                                retry_after, response.get("retry_after", 0.0)
                            )
                    if clean:
                        next_seq += count
                    else:
                        # something was shed/gapped/failed: the watermark
                        # is the one source of truth for where to resume
                        if retry_after > 0:
                            time.sleep(min(retry_after, 1.0))
                        next_seq = client.hello()["watermark"] + 1
                        outcome.recoveries += 1
                except (ConnectionError, OSError, ValueError):
                    # daemon died mid-window (or a kill raced us):
                    # reconnect — possibly to a restarted process — and
                    # resume from its watermark
                    client.close()
                    if daemon.proc is not None and daemon.proc.poll() is not None:
                        daemon.start()
                        outcome.restarts += 1
                    client = daemon.connect()
                    hello = client.hello()
                    if hello.get("resumed"):
                        outcome.resumed_restarts += 1
                    next_seq = hello["watermark"] + 1
                    outcome.recoveries += 1

            stats = client.stats()
            outcome.stats = stats
            outcome.watermark = stats["watermark"]
            outcome.totals = {k: int(v) for k, v in stats["totals"].items()}
            client.shutdown()
            client.close()
            daemon.wait()
        finally:
            try:
                daemon.kill()
            except Exception:
                pass
    return outcome


def _fleet_op(
    fleet: "FleetProcess",
    client: ServeClient,
    name: str,
    retry_for: float = 30.0,
):
    """One router fan-out op, healing the connection as needed.

    Two failure modes are expected and retried: a ``worker-down``
    refusal (the router answers it while a SIGKILLed shard is being
    restarted by the supervisor), and a dead connection — SIGKILL
    delivery is asynchronous, so a reconnect issued right after
    ``kill_router`` can still land on the dying process and get reset
    on first read.  Returns ``(client, response)`` with ``client``
    possibly replaced by a fresh connection.
    """
    deadline = time.monotonic() + retry_for
    while True:
        try:
            response = client.op(name)
            if response.get("ok"):
                return client, response
        except (ConnectionError, OSError, ValueError):
            response = None
            client.close()
            client = fleet.connect(
                retry_for=max(deadline - time.monotonic(), 1.0)
            )
        if time.monotonic() >= deadline:
            raise RuntimeError(f"fleet op {name!r} kept failing: {response}")
        time.sleep(0.1)


def _resume_cursor(hello: dict, positions: Sequence[Sequence[int]], n: int) -> int:
    """Global resume index from a router ``hello``'s per-shard watermarks.

    Each shard k must next receive its ``(watermark_k + 1)``-th request;
    the global cursor is the *earliest* of those positions.  Requests
    before other shards' positions get resent and acked as duplicates —
    per-shard watermark independence makes the overlap harmless, and
    the duplicate count proves nothing was applied twice.
    """
    cursor = n
    for entry in hello.get("shards", []):
        pos = positions[entry["shard"]]
        watermark = entry.get("watermark", 0)
        if watermark < len(pos):
            cursor = min(cursor, pos[watermark])
    return cursor


def run_sharded_soak(
    requests: Sequence[Request],
    config: ServeConfig,
    workers: int,
    restarts: int = 2,
    fault_seed: int = 20140413,
    malformed_every: int = 0,
    window: int = 256,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
    socket_path: Optional[str] = None,
    telemetry_path: Optional[str] = None,
    progress: bool = False,
) -> SoakOutcome:
    """Soak a sharded fleet, SIGKILLing workers *and* the router.

    Same exactness contract as :func:`run_soak`, against the sharded
    ground truth: merged fleet totals must be byte-identical to
    :func:`sharded_batch_totals` and the summed watermark must equal
    the trace length.  Kill events alternate victim — first a randomly
    chosen worker (supervisor warm-restarts it from its own snapshots),
    then the router (stateless; clients reconnect and resume from
    worker watermarks) — so one soak exercises both failure rows of the
    DESIGN.md §14 matrix.
    """
    outcome = SoakOutcome(sent=len(requests), workers=workers)
    outcome.batch = sharded_batch_totals(config, requests, workers, num_buckets)
    _, seqs, positions = shard_plan(requests, workers, num_buckets)

    schedule = kill_schedule(requests, restarts, fault_seed)
    kill_times = sorted(event.t for event in schedule.events)
    kill_rng = random.Random(fault_seed + 1)
    n = len(requests)

    with tempfile.TemporaryDirectory(prefix="repro-serve-fleet-soak-") as workdir:
        sock = socket_path or os.path.join(workdir, "fleet.sock")
        fleet = FleetProcess(
            sock,
            os.path.join(workdir, "run"),
            config,
            workers,
            num_buckets=num_buckets,
            telemetry_path=telemetry_path,
        )
        fleet.start()
        client = fleet.connect()
        client, hello = _fleet_op(fleet, client, "hello")
        cursor = _resume_cursor(hello, positions, n)
        kill_index = 0
        since_malformed = 0

        try:
            while cursor < n:
                if kill_index < len(kill_times) and (
                    requests[cursor].t >= kill_times[kill_index]
                ):
                    target_router = kill_index % 2 == 1
                    kill_index += 1
                    outcome.restarts += 1
                    if target_router:
                        if fleet.kill_router():
                            outcome.router_kills += 1
                    else:
                        shard = kill_rng.randrange(workers)
                        if fleet.kill_worker(shard):
                            outcome.worker_kills += 1
                    client, hello = _fleet_op(fleet, client, "hello")
                    if hello.get("resumed"):
                        outcome.resumed_restarts += 1
                    cursor = _resume_cursor(hello, positions, n)
                    if progress:
                        victim = "router" if target_router else f"worker-{shard}"
                        print(
                            f"  SIGKILLed {victim}, resumed at index {cursor} "
                            f"(warm={hello.get('resumed')})",
                            file=sys.stderr,
                        )

                count = min(window, n - cursor)
                if kill_index < len(kill_times):
                    boundary = kill_times[kill_index]
                    ahead = 0
                    while ahead < count and requests[cursor + ahead].t < boundary:
                        ahead += 1
                    count = max(ahead, 1)
                injected = 0
                try:
                    for offset in range(count):
                        r = requests[cursor + offset]
                        client.send(
                            {
                                "seq": seqs[cursor + offset],
                                "t": r.t,
                                "video": r.video,
                                "b0": r.b0,
                                "b1": r.b1,
                            }
                        )
                        since_malformed += 1
                        if malformed_every and since_malformed >= malformed_every:
                            since_malformed = 0
                            injected += 1
                            outcome.malformed_sent += 1
                            client.send_raw(_MALFORMED_LINE)
                    client.flush()
                    retry_after = 0.0
                    clean = True
                    for _ in range(count + injected):
                        response = client.read_response()
                        if response.get("ok"):
                            if response.get("kind") == "duplicate":
                                outcome.duplicates += 1
                            continue
                        code = response.get("error")
                        if code == "malformed":
                            outcome.malformed_acked += 1
                            continue
                        clean = False
                        if code == "overloaded":
                            outcome.shed += 1
                            retry_after = max(
                                retry_after, response.get("retry_after", 0.0)
                            )
                    if clean:
                        cursor += count
                    else:
                        # a shard refused (shed / gap while its worker
                        # restarts): jittered wait, then the per-shard
                        # watermarks say exactly where to resume
                        if retry_after > 0:
                            time.sleep(
                                min(client.backoff(retry_after), 1.0)
                            )
                        client, hello = _fleet_op(fleet, client, "hello")
                        cursor = _resume_cursor(hello, positions, n)
                        outcome.recoveries += 1
                except (ConnectionError, OSError, ValueError):
                    # the router died mid-window (or a kill raced us):
                    # reconnect through the restarted router and resume
                    client, hello = _fleet_op(fleet, client, "hello")
                    if hello.get("resumed"):
                        outcome.resumed_restarts += 1
                    cursor = _resume_cursor(hello, positions, n)
                    outcome.recoveries += 1

            client, stats = _fleet_op(fleet, client, "stats")
            outcome.stats = stats
            outcome.watermark = stats["watermark"]
            outcome.totals = {k: int(v) for k, v in stats["totals"].items()}
            client, _ = _fleet_op(fleet, client, "shutdown")
            client.close()
            fleet.wait()
        finally:
            try:
                fleet.terminate()
            except Exception:
                pass
    return outcome


def _generate(server: str, scale: float, days: float, seed: int) -> List[Request]:
    from repro.workload.generator import TraceGenerator
    from repro.workload.servers import SERVER_PROFILES

    profile = SERVER_PROFILES[server].scaled(scale)
    return list(TraceGenerator(profile, seed=seed).generate(days=days))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Soak/smoke a live daemon against the batch replay (exactness gate)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.soak", description=main.__doc__
    )
    parser.add_argument("--trace", default=None, help="replay this trace file")
    parser.add_argument(
        "--server", default="europe", help="generated-trace profile"
    )
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--days", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--requests", type=int, default=None, help="truncate the trace"
    )
    parser.add_argument("--algorithm", default="xLRU")
    parser.add_argument("--disk-chunks", type=int, default=2048)
    parser.add_argument("--alpha", type=float, default=2.0)
    parser.add_argument(
        "--restarts", type=int, default=1, help="seeded SIGKILL count"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=">1 soaks the sharded fleet (kills alternate worker/router)",
    )
    parser.add_argument("--num-buckets", type=int, default=DEFAULT_NUM_BUCKETS)
    parser.add_argument("--fault-seed", type=int, default=20140413)
    parser.add_argument(
        "--malformed-every",
        type=int,
        default=0,
        help="inject one malformed line every N requests",
    )
    parser.add_argument("--window", type=int, default=256)
    parser.add_argument("--snapshot-every", type=int, default=1000)
    parser.add_argument(
        "--telemetry", default=None, help="daemon telemetry JSONL output"
    )
    args = parser.parse_args(argv)

    if args.trace:
        from repro.trace.io import read_trace_csv, read_trace_jsonl

        reader = read_trace_jsonl if ".jsonl" in args.trace else read_trace_csv
        requests = list(reader(args.trace))
    else:
        requests = _generate(args.server, args.scale, args.days, args.seed)
    if args.requests is not None:
        requests = requests[: args.requests]
    if not requests:
        print("empty trace", file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory(prefix="repro-serve-snap-") as snapdir:
        config = ServeConfig(
            algorithm=args.algorithm,
            disk_chunks=args.disk_chunks,
            alpha_f2r=args.alpha,
            snapshot_dir=snapdir,
            snapshot_every=args.snapshot_every,
            publish_interval=0.5,
        )
        t0 = time.perf_counter()
        if args.workers > 1:
            outcome = run_sharded_soak(
                requests,
                config,
                workers=args.workers,
                restarts=args.restarts,
                fault_seed=args.fault_seed,
                malformed_every=args.malformed_every,
                window=args.window,
                num_buckets=args.num_buckets,
                telemetry_path=args.telemetry,
                progress=True,
            )
        else:
            outcome = run_soak(
                requests,
                config,
                restarts=args.restarts,
                fault_seed=args.fault_seed,
                malformed_every=args.malformed_every,
                window=args.window,
                telemetry_path=args.telemetry,
                progress=True,
            )
        wall = time.perf_counter() - t0

    print(outcome.describe())
    print(
        f"wall: {wall:.1f}s "
        f"({outcome.sent / wall:,.0f} req/s end-to-end incl. restarts)"
    )
    if args.telemetry:
        print(f"telemetry: {args.telemetry}")
    if not outcome.ok:
        print("SOAK FAILED", file=sys.stderr)
        print(json.dumps({"totals": outcome.totals, "batch": outcome.batch}))
        return 1
    print("soak ok: totals byte-identical, watermark exact")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
