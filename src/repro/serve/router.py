"""Video-hash request router fronting a sharded ``repro-serve`` fleet.

Topology (DESIGN.md §14): one **stateless** asyncio router process owns
the public endpoint; N worker daemons each own a private unix socket,
one event loop, and one cache shard.  Every decision request is
forwarded verbatim to the shard its video hashes to
(:func:`repro.cdn.sharding.shard_of` — the same stable blake2b routing
the offline :class:`~repro.cdn.sharding.ShardedServer` uses), so a
video's chunks always hit the same shard and per-video cache state
stays coherent.

The router was chosen over ``SO_REUSEPORT`` acceptors deliberately:

* kernel ``SO_REUSEPORT`` spreads *connections*, not *videos* — the
  same video arriving on two client connections would land on two
  acceptors, so every request would need an in-handshake redirect
  round-trip (and redirect-following clients, breaking the PR 8 wire);
* a router keeps the exactly-once ledger **entirely inside the
  workers**: the router holds no sequence state, so SIGKILLing it loses
  nothing — clients reconnect, re-``hello``, and resume from the
  per-shard watermarks the workers report.

Data path: per ``(client connection, shard)`` the router lazily opens
one upstream connection and a pump task copying responses back; the
worker answers exactly one line per forwarded line, so responses need
no correlation state.  If a worker dies mid-flight, the pump answers
each outstanding request with a structured ``overloaded`` shed (seq
never consumed) and the client resyncs via ``hello``.

Fan-out ops: ``hello``/``stats``/``snapshot``/``shutdown`` scatter to
every shard over fresh control connections and fold the replies —
totals summed, SLO histogram sketches merged *exactly* through
:func:`repro.serve.slo.merged_summary`, sustained QPS summed, and a
per-shard breakdown kept alongside the merged view so a hot shard is
diagnosable from one ``stats`` call.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cdn.sharding import DEFAULT_NUM_BUCKETS, shard_of
from repro.obs.events import EventLog
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    error_response,
    parse_line,
    shed_response,
)
from repro.serve.slo import merged_summary

__all__ = ["ShardRouter", "main"]

#: how long a fan-out op keeps retrying an unreachable worker before
#: answering ``worker-down`` (covers a supervisor restart window)
DEFAULT_OP_RETRY = 8.0

#: per-request upstream connect budget before shedding ``overloaded``
DEFAULT_DATA_RETRY = 0.3

#: totals keys are summed field-wise when folding worker stats
_MERGED_COUNTER_KEYS = (
    "queue_depth",
    "worker_restarts",
    "snapshots_written",
    "occupancy",
)


@dataclass
class _Upstream:
    """One lazily opened router→worker connection for one client."""

    shard: int
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    pump: Optional[asyncio.Task] = None
    outstanding: int = 0
    dead: bool = False


@dataclass
class _ClientState:
    """Per-client-connection routing state."""

    writer: asyncio.StreamWriter
    upstreams: Dict[int, _Upstream] = field(default_factory=dict)


class ShardRouter:
    """Thin asyncio front: parse, route by video hash, fold fan-outs."""

    def __init__(
        self,
        worker_paths: Sequence[str],
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        events: Optional[EventLog] = None,
        op_retry: float = DEFAULT_OP_RETRY,
        data_retry: float = DEFAULT_DATA_RETRY,
    ) -> None:
        if not worker_paths:
            raise ValueError("need at least one worker socket")
        if num_buckets < len(worker_paths):
            raise ValueError(
                f"need at least as many buckets ({num_buckets}) as workers "
                f"({len(worker_paths)})"
            )
        self.worker_paths = list(worker_paths)
        self.num_shards = len(worker_paths)
        self.num_buckets = num_buckets
        self.events = events if events is not None else EventLog()
        self.op_retry = op_retry
        self.data_retry = data_retry
        self.counters: Dict[str, int] = {}
        self.subscribers: Set[asyncio.StreamWriter] = set()
        self._servers: list = []
        self._tasks: list = []
        self._stopping = False
        self._stopped = asyncio.Event()
        self._stop_requested = asyncio.Event()
        self._started_perf = time.perf_counter()

    # -- lifecycle -----------------------------------------------------------

    async def start(
        self,
        unix_path: Optional[str] = None,
        tcp: Optional[Tuple[str, int]] = None,
    ) -> None:
        if not (unix_path or tcp):
            raise ValueError("need at least one of unix_path, tcp")
        if unix_path:
            self._servers.append(
                await asyncio.start_unix_server(
                    self._handle_client, path=unix_path
                )
            )
        if tcp:
            host, port = tcp
            self._servers.append(
                await asyncio.start_server(self._handle_client, host, port)
            )
        for shard in range(self.num_shards):
            self._tasks.append(
                asyncio.create_task(
                    self._subscription_pump(shard),
                    name=f"router-sub-{shard}",
                )
            )
        self.events.info(
            "router-start",
            f"{self.num_shards} shard(s), {self.num_buckets} buckets",
        )

    def request_stop(self) -> None:
        self._stop_requested.set()

    async def run(
        self,
        unix_path: Optional[str] = None,
        tcp: Optional[Tuple[str, int]] = None,
        install_signal_handlers: bool = True,
    ) -> int:
        await self.start(unix_path=unix_path, tcp=tcp)
        if install_signal_handlers:
            import signal

            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_stop)
                except (NotImplementedError, RuntimeError):
                    pass
        await self._stop_requested.wait()
        await self.shutdown()
        return 0

    async def shutdown(self) -> None:
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        for server in self._servers:
            server.close()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:
                pass
        self._stopped.set()

    # -- client connections --------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        state = _ClientState(writer=writer)
        try:
            while not self._stopping:
                line = await reader.readline()
                if not line:
                    break
                await self._handle_line(line, state)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self.subscribers.discard(writer)
            for up in state.upstreams.values():
                self._close_upstream(up)
            try:
                writer.close()
            except Exception:
                pass

    async def _handle_line(self, raw: bytes, state: _ClientState) -> None:
        try:
            parsed = parse_line(raw.decode("utf-8", "replace"))
        except ProtocolError as exc:
            self._count("router.malformed")
            await self._send(state.writer, error_response(exc.code, exc.detail))
            return
        if parsed["type"] == "op":
            self._count("router.ops")
            await self._handle_op(parsed["op"], state)
            return
        self._count("router.requests")
        shard = shard_of(parsed["video"], self.num_shards, self.num_buckets)
        await self._forward(state, shard, raw, parsed.get("seq"))

    async def _forward(
        self, state: _ClientState, shard: int, raw: bytes, seq: Optional[int]
    ) -> None:
        up = state.upstreams.get(shard)
        if up is None or up.dead:
            up = await self._open_upstream(state, shard)
        if up is None:
            self._count("router.shed")
            await self._send(state.writer, self._worker_shed(shard, seq))
            return
        up.outstanding += 1
        try:
            up.writer.write(raw if raw.endswith(b"\n") else raw + b"\n")
            await up.writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            up.outstanding -= 1
            up.dead = True
            self._count("router.shed")
            await self._send(state.writer, self._worker_shed(shard, seq))

    def _worker_shed(self, shard: int, seq: Optional[int]) -> dict:
        response = shed_response(
            retry_after=0.25,
            detail=f"shard {shard} unavailable (worker restarting)",
        )
        if seq is not None:
            response["seq"] = seq
        return response

    async def _open_upstream(
        self, state: _ClientState, shard: int
    ) -> Optional[_Upstream]:
        deadline = time.perf_counter() + self.data_retry
        while True:
            try:
                reader, writer = await asyncio.open_unix_connection(
                    self.worker_paths[shard]
                )
                break
            except OSError:
                if time.perf_counter() >= deadline:
                    return None
                await asyncio.sleep(0.02)
        up = _Upstream(shard=shard, reader=reader, writer=writer)
        up.pump = asyncio.create_task(
            self._pump(up, state.writer), name=f"router-pump-{shard}"
        )
        state.upstreams[shard] = up
        return up

    async def _pump(
        self, up: _Upstream, client_writer: asyncio.StreamWriter
    ) -> None:
        """Copy one worker's responses back to one client, 1:1."""
        cancelled = False
        try:
            while True:
                line = await up.reader.readline()
                if not line:
                    break
                if up.outstanding > 0:
                    up.outstanding -= 1
                try:
                    client_writer.write(line)
                    await client_writer.drain()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    break
        except asyncio.CancelledError:
            cancelled = True
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            up.dead = True
            flush, up.outstanding = up.outstanding, 0
            if not cancelled and flush > 0:
                # the worker died with requests in flight: every one of
                # them gets a structured shed (seq never consumed), so
                # the client can resync via hello instead of hanging
                self._count("router.worker_lost_inflight", flush)
                for _ in range(flush):
                    await self._send(
                        client_writer, self._worker_shed(up.shard, None)
                    )
            try:
                up.writer.close()
            except Exception:
                pass
        if cancelled:
            raise asyncio.CancelledError

    def _close_upstream(self, up: _Upstream) -> None:
        up.dead = True
        if up.pump is not None:
            up.pump.cancel()
        try:
            up.writer.close()
        except Exception:
            pass

    # -- fan-out ops ---------------------------------------------------------

    async def _handle_op(self, op: str, state: _ClientState) -> None:
        writer = state.writer
        if op == "subscribe":
            self.subscribers.add(writer)
            await self._send(
                writer,
                {
                    "ok": True,
                    "kind": "subscribed",
                    "workers": self.num_shards,
                },
            )
            return
        if op == "crash-worker":
            await self._send(
                writer,
                error_response(
                    "unsupported",
                    "crash-worker must target a worker socket directly",
                ),
            )
            return
        if op not in ("hello", "stats", "snapshot", "shutdown"):
            await self._send(
                writer, error_response("unsupported", f"unknown op {op!r}")
            )
            return
        replies = await self._scatter({"op": op})
        down = [shard for shard, reply in enumerate(replies) if reply is None]
        if down:
            self._count("router.worker_down")
            await self._send(
                writer,
                error_response(
                    "worker-down",
                    f"shard(s) {down} unreachable for op {op!r}; "
                    f"retry after the supervisor restarts them",
                ),
            )
            return
        if op == "hello":
            await self._send(writer, self._fold_hello(replies))
        elif op == "stats":
            await self._send(writer, self._fold_stats(replies))
        elif op == "snapshot":
            await self._send(writer, self._fold_snapshot(replies))
        elif op == "shutdown":
            await self._send(
                writer,
                {"ok": True, "kind": "stopping", "workers": self.num_shards},
            )
            self.events.info("router-shutdown", "scattered to all shards")
            self.request_stop()

    async def _scatter(self, payload: dict) -> List[Optional[dict]]:
        """Send one op to every worker; ``None`` marks an unreachable one."""
        raw = (json.dumps(payload) + "\n").encode()
        return list(
            await asyncio.gather(
                *(
                    self._ask_worker(shard, raw)
                    for shard in range(self.num_shards)
                )
            )
        )

    async def _ask_worker(self, shard: int, raw: bytes) -> Optional[dict]:
        """One request/response over a fresh control connection.

        Fresh connections sidestep stale sockets after a worker restart;
        ops are rare, so the per-op connect cost is irrelevant.  Retries
        cover one supervisor restart window, then give up (``None``).
        """
        deadline = time.perf_counter() + self.op_retry
        while True:
            writer = None
            try:
                reader, writer = await asyncio.open_unix_connection(
                    self.worker_paths[shard]
                )
                writer.write(raw)
                await writer.drain()
                line = await reader.readline()
                if not line:
                    raise ConnectionError("worker closed without answering")
                return json.loads(line)
            except (OSError, ValueError, ConnectionError):
                if time.perf_counter() >= deadline:
                    return None
                await asyncio.sleep(0.05)
            finally:
                if writer is not None:
                    try:
                        writer.close()
                    except Exception:
                        pass

    # -- folds ---------------------------------------------------------------

    def _fold_hello(self, replies: List[dict]) -> dict:
        first = replies[0]
        shards = [
            {
                "shard": shard,
                "watermark": reply.get("watermark", 0),
                "resumed": bool(reply.get("resumed")),
            }
            for shard, reply in enumerate(replies)
        ]
        return {
            "ok": True,
            "kind": "hello",
            "protocol": PROTOCOL_VERSION,
            "workers": self.num_shards,
            "num_buckets": self.num_buckets,
            "algorithm": first.get("algorithm"),
            "disk_chunks": first.get("disk_chunks"),
            "chunk_bytes": first.get("chunk_bytes"),
            "alpha_f2r": first.get("alpha_f2r"),
            "watermark": sum(s["watermark"] for s in shards),
            "resumed": any(s["resumed"] for s in shards),
            "shards": shards,
        }

    def _fold_stats(self, replies: List[dict]) -> dict:
        totals: Dict[str, int] = {}
        counters: Dict[str, float] = {}
        for reply in replies:
            for key, value in (reply.get("totals") or {}).items():
                totals[key] = totals.get(key, 0) + int(value)
            for key, value in (reply.get("counters") or {}).items():
                counters[key] = counters.get(key, 0) + value
        slo = merged_summary(
            [reply.get("registry", {}) for reply in replies],
            [
                (reply.get("slo") or {}).get("sustained_qps", 0.0)
                for reply in replies
            ],
        )
        shards = [
            {
                "shard": shard,
                "watermark": reply.get("watermark", 0),
                "queue_depth": reply.get("queue_depth", 0),
                "degraded": bool(reply.get("degraded")),
                "shed": (reply.get("counters") or {}).get("serve.shed", 0),
                "malformed": (reply.get("counters") or {}).get(
                    "serve.malformed", 0
                ),
                "worker_restarts": reply.get("worker_restarts", 0),
                "occupancy": reply.get("occupancy", 0),
                "disk_used": reply.get("disk_used", 0.0),
                "snapshots_written": reply.get("snapshots_written", 0),
                "resumed": bool(reply.get("resumed")),
                "decisions": (reply.get("slo") or {}).get("decisions", 0),
                "sustained_qps": (reply.get("slo") or {}).get(
                    "sustained_qps", 0.0
                ),
            }
            for shard, reply in enumerate(replies)
        ]
        merged: dict = {
            "ok": True,
            "kind": "stats",
            "workers": self.num_shards,
            "watermark": sum(s["watermark"] for s in shards),
            "totals": totals,
            "counters": counters,
            "slo": slo,
            "degraded": any(s["degraded"] for s in shards),
            "resumed": any(s["resumed"] for s in shards),
            "shards": shards,
            "router": {
                "counters": dict(self.counters),
                "uptime_seconds": time.perf_counter() - self._started_perf,
            },
        }
        for key in _MERGED_COUNTER_KEYS:
            merged[key] = sum(reply.get(key, 0) for reply in replies)
        return merged

    def _fold_snapshot(self, replies: List[dict]) -> dict:
        shards = [
            {
                "shard": shard,
                "watermark": reply.get("watermark", 0),
                "path": reply.get("path"),
            }
            for shard, reply in enumerate(replies)
        ]
        return {
            "ok": True,
            "kind": "snapshot",
            "watermark": sum(s["watermark"] for s in shards),
            "shards": shards,
        }

    # -- telemetry rebroadcast -----------------------------------------------

    async def _subscription_pump(self, shard: int) -> None:
        """Subscribe to one worker and rebroadcast its publications.

        Workers tag their lane snapshots with their shard id, so the
        rebroadcast needs no rewriting.  The pump reconnects forever —
        a restarting worker just causes a gap in its publications.
        """
        path = self.worker_paths[shard]
        while not self._stopping:
            writer = None
            try:
                reader, writer = await asyncio.open_unix_connection(path)
                writer.write(b'{"op": "subscribe"}\n')
                await writer.drain()
                ack = await reader.readline()  # "subscribed" — dropped
                if not ack:
                    raise ConnectionError("no subscribe ack")
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    for sub in list(self.subscribers):
                        try:
                            sub.write(line)
                            await sub.drain()
                        except (
                            ConnectionResetError,
                            BrokenPipeError,
                            OSError,
                        ):
                            self.subscribers.discard(sub)
            except (OSError, ConnectionError):
                pass
            finally:
                if writer is not None:
                    try:
                        writer.close()
                    except Exception:
                        pass
            await asyncio.sleep(0.2)

    # -- helpers -------------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    async def _send(self, writer: asyncio.StreamWriter, response: dict) -> None:
        try:
            writer.write((json.dumps(response) + "\n").encode())
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


def _parse_tcp(value: str) -> Tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(f"--tcp needs HOST:PORT, got {value!r}")
    return host, int(port)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the shard router (normally spawned by ``repro-serve --workers N``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.router", description=main.__doc__
    )
    parser.add_argument("--socket", default=None, help="public unix socket")
    parser.add_argument("--tcp", type=_parse_tcp, default=None)
    parser.add_argument(
        "--worker",
        action="append",
        default=[],
        metavar="PATH",
        help="worker unix socket, in shard order (repeat N times)",
    )
    parser.add_argument("--num-buckets", type=int, default=DEFAULT_NUM_BUCKETS)
    parser.add_argument("--op-retry", type=float, default=DEFAULT_OP_RETRY)
    parser.add_argument("--echo-events", action="store_true")
    args = parser.parse_args(argv)
    if not (args.socket or args.tcp):
        parser.error("need at least one endpoint: --socket or --tcp")
    if not args.worker:
        parser.error("need at least one --worker socket")
    router = ShardRouter(
        args.worker,
        num_buckets=args.num_buckets,
        events=EventLog(echo=args.echo_events),
        op_retry=args.op_retry,
    )
    try:
        return asyncio.run(router.run(unix_path=args.socket, tcp=args.tcp))
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C race
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
