"""A small synchronous client for the ``repro-serve`` wire protocol.

Used by the soak harness, the latency benchmark and the CI smoke job;
deliberately dependency-free (stdlib sockets) so it also serves as the
reference implementation of the client side of the exactly-once
protocol: connect, ``hello`` for the watermark, send from
``watermark + 1``, and on any failure reconnect and ask again.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Optional, Tuple, Union

__all__ = ["ServeClient", "ShardedSeq", "connect_with_retry"]


class ServeClient:
    """One connection speaking line-oriented JSON to the daemon."""

    def __init__(
        self,
        sock: socket.socket,
        timeout: float = 30.0,
        jitter_seed: Optional[int] = None,
    ) -> None:
        sock.settimeout(timeout)
        self._sock = sock
        self._file = sock.makefile("rwb")
        # per-instance RNG: two clients shed with the same retry_after
        # must NOT retry at the same instant (thundering herd); a seed
        # makes backoff reproducible in tests
        self._rng = random.Random(jitter_seed)

    # -- construction --------------------------------------------------------

    @classmethod
    def connect_unix(
        cls,
        path: str,
        timeout: float = 30.0,
        jitter_seed: Optional[int] = None,
    ) -> "ServeClient":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
        except OSError:
            sock.close()
            raise
        return cls(sock, timeout=timeout, jitter_seed=jitter_seed)

    @classmethod
    def connect_tcp(
        cls,
        host: str,
        port: int,
        timeout: float = 30.0,
        jitter_seed: Optional[int] = None,
    ) -> "ServeClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        return cls(sock, timeout=timeout, jitter_seed=jitter_seed)

    def close(self) -> None:
        for closer in (self._file.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- raw line I/O --------------------------------------------------------

    def send_raw(self, line: str) -> None:
        """Send one already-encoded line (no trailing newline needed)."""
        self._file.write(line.encode() + b"\n")

    def send(self, obj: dict) -> None:
        self._file.write(json.dumps(obj).encode() + b"\n")

    def flush(self) -> None:
        self._file.flush()

    def read_response(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return json.loads(line)

    # -- conveniences --------------------------------------------------------

    def op(self, name: str) -> dict:
        self.send({"op": name})
        self.flush()
        return self.read_response()

    def hello(self) -> dict:
        return self.op("hello")

    def stats(self) -> dict:
        return self.op("stats")

    def shutdown(self) -> dict:
        return self.op("shutdown")

    def request(
        self, t: float, video: int, b0: int, b1: int, seq: Optional[int] = None
    ) -> dict:
        message: dict = {"t": t, "video": video, "b0": b0, "b1": b1}
        if seq is not None:
            message["seq"] = seq
        self.send(message)
        self.flush()
        return self.read_response()

    # -- backoff -------------------------------------------------------------

    def backoff(self, retry_after: float, attempt: int = 0) -> float:
        """Jittered wait before honouring a shed's ``retry_after``.

        The daemon hands every concurrently shed client the *same*
        ``retry_after`` hint; sleeping exactly that long would march
        the whole herd back through the door in one instant and trigger
        the next shed.  Decorrelated jitter spreads the retries over
        ``[retry_after/2, retry_after * 1.5 * 2^attempt)`` — each
        client's per-instance RNG picks a different point even when the
        hints are identical.
        """
        retry_after = max(retry_after, 1e-4)
        low = retry_after * 0.5
        high = retry_after * 1.5 * (2 ** min(attempt, 6))
        return self._rng.uniform(low, high)

    def sleep_backoff(self, retry_after: float, attempt: int = 0) -> float:
        """Sleep :meth:`backoff`; returns the jittered wait used."""
        wait = self.backoff(retry_after, attempt)
        time.sleep(wait)
        return wait


class ShardedSeq:
    """Client-side per-shard sequence bookkeeping for a sharded fleet.

    Under the router, the exactly-once ledger is *per shard*: each
    worker keeps its own watermark over the subsequence of requests for
    the videos it owns.  A sequenced client therefore assigns
    **per-shard contiguous** sequence numbers using the same
    :func:`repro.cdn.sharding.shard_of` routing the router applies —
    ``next_seq(video)`` hands out 1, 2, 3, ... within the video's
    shard, and :meth:`resume` rewinds every shard cursor to the
    watermarks a router ``hello`` reports (duplicates are acked, so
    overlap after a partial failure is harmless).
    """

    def __init__(self, num_shards: int, num_buckets: int = 1024) -> None:
        from repro.cdn.sharding import shard_of

        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if num_buckets < num_shards:
            raise ValueError("num_buckets must be >= num_shards")
        self._shard_of = shard_of
        self.num_shards = num_shards
        self.num_buckets = num_buckets
        self.next = [1] * num_shards

    def shard(self, video: int) -> int:
        return self._shard_of(video, self.num_shards, self.num_buckets)

    def next_seq(self, video: int) -> Tuple[int, int]:
        """``(shard, seq)`` for the next request of ``video``."""
        shard = self.shard(video)
        seq = self.next[shard]
        self.next[shard] = seq + 1
        return shard, seq

    def rewind(self, shard: int, watermark: int) -> None:
        """Resend from ``watermark + 1`` on one shard."""
        self.next[shard] = watermark + 1

    def resume(self, hello: dict) -> None:
        """Align every cursor with a router ``hello`` reply."""
        for entry in hello.get("shards", []):
            self.rewind(entry["shard"], entry.get("watermark", 0))


def connect_with_retry(
    target: Union[str, Tuple[str, int]],
    timeout: float = 30.0,
    retry_for: float = 10.0,
    interval: float = 0.05,
) -> ServeClient:
    """Connect to a unix path or ``(host, port)``, retrying while the
    daemon is (re)starting.  Raises the last error after ``retry_for``
    seconds."""
    deadline = time.monotonic() + retry_for
    last: Optional[Exception] = None
    while True:
        try:
            if isinstance(target, str):
                return ServeClient.connect_unix(target, timeout=timeout)
            host, port = target
            return ServeClient.connect_tcp(host, port, timeout=timeout)
        except OSError as exc:
            last = exc
            if time.monotonic() >= deadline:
                raise ConnectionError(
                    f"could not reach daemon at {target!r} within "
                    f"{retry_for:g}s: {last!r}"
                ) from last
            time.sleep(interval)
