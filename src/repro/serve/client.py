"""A small synchronous client for the ``repro-serve`` wire protocol.

Used by the soak harness, the latency benchmark and the CI smoke job;
deliberately dependency-free (stdlib sockets) so it also serves as the
reference implementation of the client side of the exactly-once
protocol: connect, ``hello`` for the watermark, send from
``watermark + 1``, and on any failure reconnect and ask again.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Optional, Tuple, Union

__all__ = ["ServeClient", "connect_with_retry"]


class ServeClient:
    """One connection speaking line-oriented JSON to the daemon."""

    def __init__(self, sock: socket.socket, timeout: float = 30.0) -> None:
        sock.settimeout(timeout)
        self._sock = sock
        self._file = sock.makefile("rwb")

    # -- construction --------------------------------------------------------

    @classmethod
    def connect_unix(cls, path: str, timeout: float = 30.0) -> "ServeClient":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
        except OSError:
            sock.close()
            raise
        return cls(sock, timeout=timeout)

    @classmethod
    def connect_tcp(
        cls, host: str, port: int, timeout: float = 30.0
    ) -> "ServeClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        return cls(sock, timeout=timeout)

    def close(self) -> None:
        for closer in (self._file.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- raw line I/O --------------------------------------------------------

    def send_raw(self, line: str) -> None:
        """Send one already-encoded line (no trailing newline needed)."""
        self._file.write(line.encode() + b"\n")

    def send(self, obj: dict) -> None:
        self._file.write(json.dumps(obj).encode() + b"\n")

    def flush(self) -> None:
        self._file.flush()

    def read_response(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return json.loads(line)

    # -- conveniences --------------------------------------------------------

    def op(self, name: str) -> dict:
        self.send({"op": name})
        self.flush()
        return self.read_response()

    def hello(self) -> dict:
        return self.op("hello")

    def stats(self) -> dict:
        return self.op("stats")

    def shutdown(self) -> dict:
        return self.op("shutdown")

    def request(
        self, t: float, video: int, b0: int, b1: int, seq: Optional[int] = None
    ) -> dict:
        message: dict = {"t": t, "video": video, "b0": b0, "b1": b1}
        if seq is not None:
            message["seq"] = seq
        self.send(message)
        self.flush()
        return self.read_response()


def connect_with_retry(
    target: Union[str, Tuple[str, int]],
    timeout: float = 30.0,
    retry_for: float = 10.0,
    interval: float = 0.05,
) -> ServeClient:
    """Connect to a unix path or ``(host, port)``, retrying while the
    daemon is (re)starting.  Raises the last error after ``retry_for``
    seconds."""
    deadline = time.monotonic() + retry_for
    last: Optional[Exception] = None
    while True:
        try:
            if isinstance(target, str):
                return ServeClient.connect_unix(target, timeout=timeout)
            host, port = target
            return ServeClient.connect_tcp(host, port, timeout=timeout)
        except OSError as exc:
            last = exc
            if time.monotonic() >= deadline:
                raise ConnectionError(
                    f"could not reach daemon at {target!r} within "
                    f"{retry_for:g}s: {last!r}"
                ) from last
            time.sleep(interval)
