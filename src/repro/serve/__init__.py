"""``repro.serve`` — the cache as a service, not a batch job.

A long-running asyncio daemon (``repro-serve``) that answers
serve/redirect decisions over a JSONL stream (unix socket, TCP, or
stdin), with the robustness pillars the paper's "lines of defense"
story implies for production: admission control + backpressure, atomic
watermarked crash recovery, a supervised decision worker with bounded
retries, SLO measurement through ``repro.obs``, and a fault-soak
harness proving exactly-once accounting across SIGKILLs.

``--workers N`` scales the daemon out to one event loop per core: N
sharded workers behind a stateless video-hash router
(:mod:`repro.serve.router`), supervised by :mod:`repro.serve.fleet`,
with per-shard snapshot lineages and exactly-merged SLOs.

See DESIGN.md §13 for the single-daemon architecture and failure
matrix, §14 for the sharded fleet.
"""

from repro.serve.client import ServeClient, ShardedSeq, connect_with_retry
from repro.serve.daemon import (
    DecisionService,
    ServeConfig,
    ServeDaemon,
    TransientDecisionError,
)
from repro.serve.fleet import FleetConfig, ServeFleet
from repro.serve.limiter import TokenBucket
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decide_and_account,
    new_totals,
    parse_line,
)
from repro.serve.router import ShardRouter
from repro.serve.slo import ServeSLO, merged_summary
from repro.serve.snapshotter import RestoredState, SnapshotStore

__all__ = [
    "DecisionService",
    "FleetConfig",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RestoredState",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "ServeFleet",
    "ServeSLO",
    "ShardRouter",
    "ShardedSeq",
    "SnapshotStore",
    "TokenBucket",
    "TransientDecisionError",
    "connect_with_retry",
    "decide_and_account",
    "merged_summary",
    "new_totals",
    "parse_line",
]
