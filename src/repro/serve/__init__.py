"""``repro.serve`` — the cache as a service, not a batch job.

A long-running asyncio daemon (``repro-serve``) that answers
serve/redirect decisions over a JSONL stream (unix socket, TCP, or
stdin), with the robustness pillars the paper's "lines of defense"
story implies for production: admission control + backpressure, atomic
watermarked crash recovery, a supervised decision worker with bounded
retries, SLO measurement through ``repro.obs``, and a fault-soak
harness proving exactly-once accounting across SIGKILLs.

See DESIGN.md §13 for the architecture and failure matrix.
"""

from repro.serve.client import ServeClient, connect_with_retry
from repro.serve.daemon import (
    DecisionService,
    ServeConfig,
    ServeDaemon,
    TransientDecisionError,
)
from repro.serve.limiter import TokenBucket
from repro.serve.protocol import (
    ProtocolError,
    decide_and_account,
    new_totals,
    parse_line,
)
from repro.serve.slo import ServeSLO
from repro.serve.snapshotter import RestoredState, SnapshotStore

__all__ = [
    "DecisionService",
    "ProtocolError",
    "RestoredState",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "ServeSLO",
    "SnapshotStore",
    "TokenBucket",
    "TransientDecisionError",
    "connect_with_retry",
    "decide_and_account",
    "new_totals",
    "parse_line",
]
