"""Serve-side SLO measurement: decision latency and sustained QPS.

Every admitted request's decision latency (dequeue to response built)
feeds a :class:`~repro.obs.sketch.HistogramSketch` inside a standard
:class:`~repro.obs.registry.MetricRegistry`, so the daemon's SLOs ride
the existing ``repro.obs`` machinery — same sketches, same JSONL
schema, same ``repro-report`` tooling — instead of a parallel metrics
stack.  Latencies are recorded in *microseconds* (decisions run tens
of µs) to keep the log-bucket resolution comfortable.

p50/p99/p999 and the sustained decision rate are exported in the lane
summary and gated by ``benchmarks/test_serve_latency.py``
(``BENCH_serve.json``).
"""

from __future__ import annotations

import math
import time
from typing import Dict, Optional

from repro.obs.registry import MetricRegistry
from repro.obs.sketch import DEFAULT_GROWTH

__all__ = ["ServeSLO", "merged_summary"]

_LATENCY = "decision_us"

#: quantiles the summary reports, with their field names
QUANTILES = (("p50", 0.50), ("p99", 0.99), ("p999", 0.999))


def _latency_ms_from(sketch) -> Dict[str, Optional[float]]:
    """Quantile block (ms, JSON-safe) from one latency sketch (or None)."""
    out: Dict[str, Optional[float]] = {}
    for name, q in QUANTILES:
        value = sketch.quantile(q) if sketch is not None else math.nan
        out[name] = value / 1e3 if math.isfinite(value) else None
    return out


def merged_summary(registries, sustained_qps) -> dict:
    """Fold per-shard SLOs into one summary — *exactly*, not averaged.

    ``registries`` are worker ``MetricRegistry.to_dict`` payloads (the
    ``registry`` field of each worker's ``stats`` reply): their latency
    sketches merge bucket-wise via the standard ``repro.obs``
    cross-process merge, so the fleet-wide p99 is the true quantile of
    the union of all decisions, not an average of per-shard quantiles.
    Sustained QPS is summed — shards decide concurrently.  Returns the
    same shape as :meth:`ServeSLO.summary`.
    """
    registry = MetricRegistry.from_merged(registries)
    sketch = registry.histograms.get(_LATENCY)
    return {
        "decisions": int(sketch.count) if sketch is not None else 0,
        "latency_ms": _latency_ms_from(sketch),
        "sustained_qps": float(sum(sustained_qps)),
    }


class ServeSLO:
    """Latency/throughput accounting for one daemon lifetime."""

    def __init__(self, histogram_growth: float = DEFAULT_GROWTH) -> None:
        self.registry = MetricRegistry(histogram_growth=histogram_growth)
        self._first_decision: Optional[float] = None
        self._last_decision: Optional[float] = None
        self._decisions = 0

    # -- recording -----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.registry.count(name, n)

    def counter(self, name: str) -> float:
        return self.registry.counter(name)

    def observe_decision(self, seconds: float) -> None:
        """Fold one decision latency (seconds) into the sketch."""
        now = time.perf_counter()
        if self._first_decision is None:
            self._first_decision = now
        self._last_decision = now
        self._decisions += 1
        self.registry.observe(_LATENCY, seconds * 1e6)

    # -- queries -------------------------------------------------------------

    def latency_ms(self) -> Dict[str, Optional[float]]:
        """``{"p50": ..., "p99": ..., "p999": ...}`` in milliseconds.

        Quantiles are ``None`` until the first decision lands — ``NaN``
        is not valid JSON, and these dicts go straight onto the wire.
        """
        return _latency_ms_from(self.registry.histograms.get(_LATENCY))

    def sustained_qps(self) -> float:
        """Decisions per second between the first and last decision."""
        if (
            self._decisions < 2
            or self._first_decision is None
            or self._last_decision is None
        ):
            return 0.0
        span = self._last_decision - self._first_decision
        if span <= 0:
            return 0.0
        return (self._decisions - 1) / span

    def summary(self) -> dict:
        """JSON-safe SLO block for the ``stats`` op and telemetry."""
        return {
            "decisions": self._decisions,
            "latency_ms": self.latency_ms(),
            "sustained_qps": self.sustained_qps(),
        }
