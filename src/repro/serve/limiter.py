"""Token-bucket admission control for the serve daemon.

The first line of defense against overload is refusing work *early*:
a request that will only time out in the queue is cheaper to reject at
the door with a Retry-After hint.  The bucket refills continuously at
``rate`` tokens/second up to ``burst``; admission takes one token.
``try_acquire`` never sleeps — it either grants now or answers "come
back in this many seconds", which the daemon forwards verbatim in the
``overloaded`` response.

The clock is injectable so tests drive time deterministically.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["TokenBucket"]


class TokenBucket:
    """Continuous-refill token bucket (``rate <= 0`` disables limiting)."""

    def __init__(
        self,
        rate: float,
        burst: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate > 0 and burst < 1.0:
            raise ValueError(f"burst must be >= 1 token, got {burst}")
        self.rate = rate
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._refilled_at = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._refilled_at = now

    def try_acquire(self, n: float = 1.0) -> float:
        """Take ``n`` tokens if available.

        Returns ``0.0`` on success, otherwise the seconds until the
        bucket will hold ``n`` tokens again (the Retry-After hint).
        The failed call consumes nothing.
        """
        if self.rate <= 0:
            return 0.0
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return 0.0
        return (n - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Current token count (after refill) — for tests/telemetry."""
        if self.rate <= 0:
            return float("inf")
        self._refill()
        return self._tokens
