"""Viewing sessions: byte-range requests with early-abandonment bias.

Section 2: "The first segments of the video often receive the highest
number of hits compared to the rest" [11].  This emerges naturally from
a session model in which most viewers start at the beginning and a
large share abandon early:

* with probability ``full_watch_prob`` the session plays to the end;
* otherwise the watched fraction is Beta-distributed, skewed small;
* with probability ``seek_prob`` the session starts mid-file (serving
  the paper's point that clients "may request different ranges at their
  own choice").

A session is emitted as one or more HTTP range requests of at most
``request_span_bytes`` each, spaced by playback time at ``bitrate``
bytes/second — so a single viewing produces the multiple byte-range
requests a real player issues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.trace.requests import Request
from repro.workload.catalog import Video

__all__ = ["SessionModel"]


@dataclass(frozen=True, slots=True)
class SessionModel:
    """Parameters of the viewer behaviour model."""

    full_watch_prob: float = 0.2
    abandon_alpha: float = 0.7
    abandon_beta: float = 2.2
    seek_prob: float = 0.12
    request_span_bytes: int = 8 << 20
    bitrate: float = 512 * 1024.0  # bytes of media per second of playback
    min_watch_bytes: int = 256 << 10

    def __post_init__(self) -> None:
        if not 0.0 <= self.full_watch_prob <= 1.0:
            raise ValueError("full_watch_prob must be in [0, 1]")
        if not 0.0 <= self.seek_prob <= 1.0:
            raise ValueError("seek_prob must be in [0, 1]")
        if self.abandon_alpha <= 0 or self.abandon_beta <= 0:
            raise ValueError("Beta parameters must be positive")
        if self.request_span_bytes <= 0:
            raise ValueError("request_span_bytes must be positive")
        if self.bitrate <= 0:
            raise ValueError("bitrate must be positive")

    def generate(
        self, video: Video, t0: float, rng: np.random.Generator
    ) -> List[Request]:
        """Emit the range requests of one session starting at ``t0``."""
        requests: List[Request] = []

        def append(t: float, vid: int, b0: int, b1: int) -> None:
            requests.append(Request(t=t, video=vid, b0=b0, b1=b1))

        self.emit_into(video, t0, rng, append)
        return requests

    def emit_into(self, video: Video, t0: float, rng, append) -> int:
        """Stream one session's range requests into ``append``.

        ``append(t, video, b0, b1)`` receives each request's source
        fields — typically :meth:`PackedTraceBuilder.append
        <repro.trace.columnar.PackedTraceBuilder.append>`, so a trace
        can be generated straight into packed columns without ever
        materializing :class:`Request` objects.  Draws from ``rng`` in
        exactly the order :meth:`generate` does (it delegates here), so
        the streamed and materialized traces are identical.  Returns
        the number of requests emitted.
        """
        size = video.size_bytes
        if rng.random() < self.seek_prob and size > 2 * self.min_watch_bytes:
            start = int(rng.uniform(0, size * 0.8))
        else:
            start = 0

        remaining = size - start
        if rng.random() < self.full_watch_prob:
            watched = remaining
        else:
            fraction = rng.beta(self.abandon_alpha, self.abandon_beta)
            watched = int(remaining * fraction)
        watched = max(min(watched, remaining), min(self.min_watch_bytes, remaining))

        vid = video.video_id
        span = self.request_span_bytes
        bitrate = self.bitrate
        count = 0
        offset = start
        end = start + watched
        while offset < end:
            span_end = min(offset + span, end)
            append(t0 + (offset - start) / bitrate, vid, offset, span_end - 1)
            offset = span_end
            count += 1
        return count

    def expected_requests_per_session(self, mean_video_bytes: float) -> float:
        """Rough planning estimate of requests emitted per session."""
        mean_fraction = (
            self.full_watch_prob
            + (1 - self.full_watch_prob)
            * self.abandon_alpha
            / (self.abandon_alpha + self.abandon_beta)
        )
        mean_watched = mean_video_bytes * mean_fraction
        return max(1.0, mean_watched / self.request_span_bytes)
