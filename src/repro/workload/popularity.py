"""Dynamic video popularity: Zipf base weights with churn lifecycles.

Popularity has two parts:

* a **static Zipf law** over catalog ranks — ``weight(rank) ∝
  1 / (rank + 1)^s`` — producing the head/torso/tail structure every
  video workload study reports;
* a **lifecycle** multiplier for churned videos: zero before birth, a
  linear ramp to peak over ``ramp`` seconds, then exponential decay with
  time constant ``decay_tau``.  Pre-existing videos also get a slow
  random drift (per-epoch lognormal jitter) so the popular set churns
  gradually — the paper's "transient demand patterns".

Sampling is epoch-based: weights are recomputed every ``epoch`` seconds
and turned into a cumulative distribution for O(log n) inverse-CDF
sampling, which makes month-long trace generation cheap while keeping
the dynamics (an epoch of a few hours is far finer than the lifecycle
time scales).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.workload.catalog import VideoCatalog

__all__ = ["PopularityModel"]


class PopularityModel:
    """Samples video IDs according to time-varying popularity."""

    def __init__(
        self,
        catalog: VideoCatalog,
        zipf_s: float = 0.9,
        epoch: float = 6 * 3600.0,
        ramp: float = 12 * 3600.0,
        decay_tau: float = 5 * 86400.0,
        drift_sigma: float = 0.15,
        seed: int = 0,
    ) -> None:
        if zipf_s <= 0:
            raise ValueError(f"zipf_s must be positive, got {zipf_s}")
        if epoch <= 0 or ramp <= 0 or decay_tau <= 0:
            raise ValueError("epoch, ramp and decay_tau must be positive")
        self.catalog = catalog
        self.zipf_s = zipf_s
        self.epoch = epoch
        self.ramp = ramp
        self.decay_tau = decay_tau
        self.drift_sigma = drift_sigma
        self._rng = np.random.default_rng(seed)

        n = len(catalog)
        ranks = np.array([v.rank for v in catalog.videos], dtype=float)
        self._base = 1.0 / np.power(ranks + 1.0, zipf_s)
        self._births = np.array([v.birth for v in catalog.videos])
        self._ids = np.array([v.video_id for v in catalog.videos], dtype=np.int64)
        #: persistent drift multipliers, random-walked once per epoch
        self._drift = np.ones(n)
        self._epoch_index: Optional[int] = None
        self._cdf: Optional[np.ndarray] = None

    def weights_at(self, t: float) -> np.ndarray:
        """Instantaneous (unnormalized) sampling weights at time ``t``."""
        age = t - self._births
        lifecycle = np.ones_like(age)
        churned = self._births >= 0
        a = age[churned]
        # np.where evaluates both branches; clamp the decay exponent so
        # unborn videos (a < 0) do not overflow exp() before being
        # masked out.
        decay = np.exp(-np.maximum(a - self.ramp, 0.0) / self.decay_tau)
        cycle = np.where(
            a < 0,
            0.0,
            np.where(a < self.ramp, a / self.ramp, decay),
        )
        lifecycle[churned] = cycle
        return self._base * lifecycle * self._drift

    def sample(self, t: float, size: int = 1) -> np.ndarray:
        """Draw ``size`` video IDs according to popularity at time ``t``."""
        epoch_index = int(t // self.epoch)
        if epoch_index != self._epoch_index:
            self._advance_to(epoch_index)
        assert self._cdf is not None
        u = self._rng.random(size) * self._cdf[-1]
        positions = np.searchsorted(self._cdf, u, side="right")
        return self._ids[positions]

    def _advance_to(self, epoch_index: int) -> None:
        """Recompute the CDF for a new epoch, advancing the drift walk."""
        steps = 1 if self._epoch_index is None else max(1, epoch_index - self._epoch_index)
        if self.drift_sigma > 0:
            for _ in range(min(steps, 16)):
                self._drift *= self._rng.lognormal(
                    0.0, self.drift_sigma, size=self._drift.size
                )
            # keep the walk centered so total volume does not wander
            self._drift /= self._drift.mean()
        self._epoch_index = epoch_index
        weights = self.weights_at(epoch_index * self.epoch)
        total = weights.sum()
        if total <= 0:
            # Degenerate corner (all videos unborn/decayed): uniform.
            weights = np.ones_like(weights)
        self._cdf = np.cumsum(weights)
