"""The six regional server profiles of the paper's evaluation.

Section 9 evaluates "six selected servers around the world: One in
Africa, Asia, Australia, Europe, and North and South America" over one
month, and notes in Figure 7 that "the different levels of efficiency
from server to server indicate different request profiles ... request
volume and diversity compared to the same 1 TB disk size given to all.
For example, the selected server in Asia is serving more limited
requests compared to the South American one, hence higher efficiencies."

The profiles below encode exactly that spread: Asia the most
concentrated (small catalog, steep Zipf), South America the busiest and
most diverse, Europe in between (it is the paper's running example).
Absolute volumes are laptop-scaled; what matters to the algorithms is
the ratio of demand diversity to disk size, which the experiments
preserve by sizing disks off the trace footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

__all__ = ["ServerProfile", "SERVER_PROFILES", "paper_server_profiles"]


@dataclass(frozen=True, slots=True)
class ServerProfile:
    """Workload parameters of one CDN server location."""

    name: str
    region: str
    #: catalog diversity: distinct videos with local demand
    num_videos: int
    #: Zipf exponent of local popularity (higher = more concentrated)
    zipf_s: float
    #: mean viewing sessions per day
    sessions_per_day: float
    #: local evening peak (hours, trace-relative clock)
    peak_hour: float = 20.0
    diurnal_amplitude: float = 0.6
    weekend_boost: float = 1.15
    churn_fraction: float = 0.25
    mean_video_bytes: float = 24e6
    #: deterministic per-server seed (decorrelates local popularity)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_videos <= 0:
            raise ValueError("num_videos must be positive")
        if self.sessions_per_day <= 0:
            raise ValueError("sessions_per_day must be positive")
        if self.zipf_s <= 0:
            raise ValueError("zipf_s must be positive")

    def scaled(self, factor: float) -> "ServerProfile":
        """Scale the workload volume and diversity by ``factor``.

        Used by tests and quick benches to shrink the month-long
        workloads while keeping the demand-diversity-to-volume shape.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            num_videos=max(1, int(self.num_videos * factor)),
            sessions_per_day=self.sessions_per_day * factor,
        )


def paper_server_profiles() -> Dict[str, ServerProfile]:
    """The six per-continent profiles used by the figure experiments."""
    return {
        "africa": ServerProfile(
            name="africa",
            region="Africa",
            num_videos=9_000,
            zipf_s=0.95,
            sessions_per_day=2_600,
            peak_hour=20.0,
            seed=101,
        ),
        "asia": ServerProfile(
            name="asia",
            region="Asia",
            num_videos=6_000,
            zipf_s=1.05,
            sessions_per_day=2_200,
            peak_hour=21.0,
            seed=102,
        ),
        "australia": ServerProfile(
            name="australia",
            region="Australia",
            num_videos=8_000,
            zipf_s=0.92,
            sessions_per_day=2_400,
            peak_hour=19.0,
            seed=103,
        ),
        "europe": ServerProfile(
            name="europe",
            region="Europe",
            num_videos=12_000,
            zipf_s=0.90,
            sessions_per_day=3_200,
            peak_hour=20.0,
            seed=104,
        ),
        "north_america": ServerProfile(
            name="north_america",
            region="North America",
            num_videos=14_000,
            zipf_s=0.85,
            sessions_per_day=3_600,
            peak_hour=20.5,
            seed=105,
        ),
        "south_america": ServerProfile(
            name="south_america",
            region="South America",
            num_videos=16_000,
            zipf_s=0.80,
            sessions_per_day=4_200,
            peak_hour=20.0,
            seed=106,
        ),
    }


#: Module-level instance for convenient importing.
SERVER_PROFILES: Dict[str, ServerProfile] = paper_server_profiles()
