"""A global catalog with per-server views (multi-server workloads).

Single-server experiments can generate each server's catalog
independently, but a *hierarchy* needs content identity to be globally
consistent: when two edges request video 5, the parent must see the
same video with the same size.  The paper's model for this is explicit:
per-location popularity has "no strong correlation with the global
popularity" [28], i.e. servers share a corpus but rank it differently.

:class:`GlobalCatalog` holds the master corpus (IDs, sizes — global
facts) and derives per-server :class:`~repro.workload.catalog.VideoCatalog`
views: a seeded sample of the corpus with *locally permuted popularity
ranks* and locally drawn churn births.  Overlap between two views is
controlled by the view sizes relative to the corpus (sampling without
replacement), mirroring how regional demand intersects.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.workload.catalog import Video, VideoCatalog
from repro.workload.servers import ServerProfile

__all__ = ["GlobalCatalog"]


class GlobalCatalog:
    """The CDN's corpus of videos, viewable per server."""

    def __init__(self, master: VideoCatalog) -> None:
        self.master = master

    def __len__(self) -> int:
        return len(self.master)

    @classmethod
    def generate(
        cls,
        total_videos: int,
        seed: int = 0,
        mean_size_bytes: float = 24e6,
        **kwargs,
    ) -> "GlobalCatalog":
        """Generate the master corpus (no churn at the global level —
        churn is a per-server demand phenomenon and is drawn per view).
        """
        master = VideoCatalog.generate(
            total_videos,
            seed=seed,
            mean_size_bytes=mean_size_bytes,
            churn_fraction=0.0,
            **kwargs,
        )
        return cls(master)

    def server_view(
        self,
        profile: ServerProfile,
        duration: float,
        seed: Optional[int] = None,
    ) -> VideoCatalog:
        """A server-local catalog: sampled corpus, local ranks/births.

        Raises ``ValueError`` when the profile wants more videos than
        the corpus holds.  Deterministic per (corpus, profile seed).
        """
        if profile.num_videos > len(self.master):
            raise ValueError(
                f"profile {profile.name!r} wants {profile.num_videos} videos "
                f"but the corpus has {len(self.master)}"
            )
        rng = np.random.default_rng(profile.seed if seed is None else seed)
        picks = rng.choice(
            len(self.master.videos), size=profile.num_videos, replace=False
        )
        local_ranks = rng.permutation(profile.num_videos)
        births = np.full(profile.num_videos, -1.0)
        num_churn = int(profile.num_videos * profile.churn_fraction)
        if num_churn:
            churn_idx = rng.choice(profile.num_videos, size=num_churn, replace=False)
            births[churn_idx] = rng.uniform(0.0, duration, size=num_churn)
        videos = []
        for i, pick in enumerate(picks):
            source = self.master.videos[int(pick)]
            videos.append(
                Video(
                    video_id=source.video_id,
                    size_bytes=source.size_bytes,
                    rank=int(local_ranks[i]),
                    birth=float(births[i]),
                )
            )
        return VideoCatalog(videos)

    def overlap(self, view_a: VideoCatalog, view_b: VideoCatalog) -> float:
        """Jaccard overlap of two views' video sets."""
        a = {v.video_id for v in view_a.videos}
        b = {v.video_id for v in view_b.videos}
        union = a | b
        if not union:
            return 0.0
        return len(a & b) / len(union)
