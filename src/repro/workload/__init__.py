"""Synthetic video-CDN workload generation.

The paper evaluates on anonymized request logs of six production
servers, which are not publicly available.  This package synthesizes
statistically equivalent traces exhibiting the properties the paper's
algorithms exploit (and which the paper and its citations document):

* Zipf-like video popularity with a long heavy tail (Section 3: files
  "on the borderline of caching ... have very few accesses"), per-server
  local popularity decorrelated from global popularity [28];
* catalog churn — new videos appear, ramp up, and decay ("transient
  demand patterns", Section 1);
* diurnal request arrivals with per-region phase (Figure 3 shows daily
  peaks in ingress and redirection);
* session-based byte ranges with early-segment bias (Section 2's
  "diverse intra-file popularities", citing [11]) and partial watching;
* six regional server profiles of different volume and diversity
  (Section 9: Asia "serving more limited requests" than South America).

Every generator is deterministic given a seed.
"""

from repro.workload.catalog import Video, VideoCatalog
from repro.workload.diurnal import DiurnalRate
from repro.workload.events import inject_flash_crowd, inject_rate_surge
from repro.workload.generator import TraceGenerator
from repro.workload.global_catalog import GlobalCatalog
from repro.workload.popularity import PopularityModel
from repro.workload.servers import SERVER_PROFILES, ServerProfile, paper_server_profiles
from repro.workload.sessions import SessionModel

__all__ = [
    "inject_flash_crowd",
    "inject_rate_surge",
    "GlobalCatalog",
    "Video",
    "VideoCatalog",
    "DiurnalRate",
    "PopularityModel",
    "SessionModel",
    "TraceGenerator",
    "ServerProfile",
    "SERVER_PROFILES",
    "paper_server_profiles",
]
