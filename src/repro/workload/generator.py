"""End-to-end trace generation from a server profile.

Ties the catalog, popularity, diurnal and session models together:
session arrival times come from the non-homogeneous Poisson process,
each arrival picks a video from the (time-varying) popularity
distribution, and each session expands into byte-range requests.  The
result is a time-sorted request trace for one server, deterministic
given the profile and seed.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.trace.columnar import PackedTrace, PackedTraceBuilder
from repro.trace.requests import DEFAULT_CHUNK_BYTES, Request
from repro.workload.catalog import VideoCatalog
from repro.workload.diurnal import DiurnalRate
from repro.workload.popularity import PopularityModel
from repro.workload.servers import ServerProfile
from repro.workload.sessions import SessionModel

__all__ = ["TraceGenerator"]

DAY = 86400.0


class TraceGenerator:
    """Generates synthetic traces for one server profile."""

    def __init__(
        self,
        profile: ServerProfile,
        session_model: Optional[SessionModel] = None,
        seed: Optional[int] = None,
        catalog: Optional[VideoCatalog] = None,
    ) -> None:
        """``catalog``: use an externally built server-local catalog
        (e.g. a :class:`~repro.workload.global_catalog.GlobalCatalog`
        view, for multi-server consistency) instead of generating one.
        """
        self.profile = profile
        self.session_model = session_model if session_model is not None else SessionModel()
        self.seed = profile.seed if seed is None else seed
        self._catalog = catalog

    def build_catalog(self, duration: float) -> VideoCatalog:
        """The server-local catalog (sizes, ranks, churn births)."""
        if self._catalog is not None:
            return self._catalog
        return VideoCatalog.generate(
            self.profile.num_videos,
            seed=self.seed,
            mean_size_bytes=self.profile.mean_video_bytes,
            churn_fraction=self.profile.churn_fraction,
            duration=duration,
        )

    def _session_plan(self, days: float):
        """Catalog, session rng, and the (arrival, video id) lists.

        The shared front half of :meth:`generate` and
        :meth:`generate_packed`: Poisson arrivals and epoch-batched
        popularity sampling, identical in both lanes.  Returns
        ``(catalog, rng, arrivals, video_ids)`` with empty lists when
        no session arrives.
        """
        if days <= 0:
            raise ValueError(f"days must be positive, got {days}")
        duration = days * DAY
        catalog = self.build_catalog(duration)
        popularity = PopularityModel(
            catalog,
            zipf_s=self.profile.zipf_s,
            seed=self.seed + 1,
        )
        diurnal = DiurnalRate(
            base_rate=self.profile.sessions_per_day / DAY,
            amplitude=self.profile.diurnal_amplitude,
            peak_hour=self.profile.peak_hour,
            weekend_boost=self.profile.weekend_boost,
        )
        rng = np.random.default_rng(self.seed + 2)

        arrivals = np.fromiter(diurnal.arrivals(duration, rng), dtype=float)
        if arrivals.size == 0:
            return catalog, rng, [], []

        # Pick videos in per-epoch batches: arrivals are time-sorted, so
        # grouping by epoch keeps PopularityModel's CDF cache hot and
        # the sampling vectorized.
        video_ids = np.empty(arrivals.size, dtype=np.int64)
        epoch_ids = (arrivals // popularity.epoch).astype(np.int64)
        start = 0
        while start < arrivals.size:
            end = start
            while end < arrivals.size and epoch_ids[end] == epoch_ids[start]:
                end += 1
            video_ids[start:end] = popularity.sample(
                float(arrivals[start]), size=end - start
            )
            start = end
        return catalog, rng, arrivals.tolist(), video_ids.tolist()

    def generate(self, days: float = 30.0) -> List[Request]:
        """Produce the time-sorted request trace of ``days`` days."""
        catalog, rng, arrivals, video_ids = self._session_plan(days)
        requests: List[Request] = []
        session = self.session_model.generate
        for t0, video_id in zip(arrivals, video_ids):
            video = catalog[int(video_id)]
            if video.birth > t0:
                # Epoch-granular sampling can pick a video minutes
                # before its birth; nudge such sessions past it.
                t0 = video.birth
            requests.extend(session(video, t0, rng))
        requests.sort(key=lambda r: r.t)
        return requests

    def generate_packed(
        self,
        days: float = 30.0,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> PackedTrace:
        """Stream the trace of ``days`` days straight into packed columns.

        Byte-identical to ``pack_trace(self.generate(days))`` — same
        seeds, same rng draw order, same stable time sort — but session
        requests are appended to a :class:`PackedTraceBuilder` as they
        are emitted, so peak memory is the flat column payload plus one
        flush buffer, never a materialized ``Request`` list.  This is
        what makes 10M-request fleet traces practical.
        """
        catalog, rng, arrivals, video_ids = self._session_plan(days)
        builder = PackedTraceBuilder(chunk_bytes=chunk_bytes)
        append = builder.append
        emit = self.session_model.emit_into
        for t0, video_id in zip(arrivals, video_ids):
            video = catalog[int(video_id)]
            if video.birth > t0:
                # Epoch-granular sampling can pick a video minutes
                # before its birth; nudge such sessions past it.
                t0 = video.birth
            emit(video, t0, rng, append)
        return builder.finalize()

    def estimate_requests(self, days: float = 30.0) -> float:
        """Planning estimate of trace length without generating it."""
        sessions = self.profile.sessions_per_day * days
        per_session = self.session_model.expected_requests_per_session(
            self.profile.mean_video_bytes
        )
        return sessions * per_session
