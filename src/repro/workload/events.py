"""Demand-shock injection: flash crowds and load surges.

The paper motivates per-server caching with "an extensive and dynamic
set of files with transient demand patterns" (Section 1).  The steady
generator models gradual churn; this module injects the abrupt kind —
a video going viral, or a plain load surge — into an existing trace so
robustness can be tested: does a cache admit the flash content quickly,
and does it recover (no lasting pollution) once the event passes?

Both injectors are pure functions over request lists and keep the
result time-sorted, so they compose with any generated or recorded
trace.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.trace.requests import Request
from repro.workload.catalog import Video
from repro.workload.sessions import SessionModel

__all__ = ["inject_flash_crowd", "inject_rate_surge"]


def inject_flash_crowd(
    trace: Sequence[Request],
    video: Video,
    t_start: float,
    duration: float,
    peak_sessions_per_hour: float,
    rng: np.random.Generator,
    session_model: Optional[SessionModel] = None,
    ramp_fraction: float = 0.2,
) -> List[Request]:
    """Overlay a viral event for ``video`` onto ``trace``.

    Session arrivals for the flash video follow a triangular intensity:
    a fast ramp over the first ``ramp_fraction`` of ``duration`` to
    ``peak_sessions_per_hour``, then a linear decay to zero — the
    canonical flash-crowd shape.  Flash viewers use the same session
    model as organic ones (early abandonment included).
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if peak_sessions_per_hour <= 0:
        raise ValueError("peak_sessions_per_hour must be positive")
    if not 0.0 < ramp_fraction < 1.0:
        raise ValueError("ramp_fraction must be in (0, 1)")
    session_model = session_model if session_model is not None else SessionModel()

    peak_rate = peak_sessions_per_hour / 3600.0
    ramp_end = t_start + duration * ramp_fraction
    t_end = t_start + duration

    def intensity(t: float) -> float:
        if t < t_start or t >= t_end:
            return 0.0
        if t < ramp_end:
            return peak_rate * (t - t_start) / (ramp_end - t_start)
        return peak_rate * (t_end - t) / (t_end - ramp_end)

    extra: List[Request] = []
    step = max(duration / 200.0, 1.0)
    t = t_start
    while t < t_end:
        width = min(step, t_end - t)
        count = rng.poisson(intensity(t + width / 2.0) * width)
        for arrival in np.sort(rng.uniform(t, t + width, size=count)):
            extra.extend(session_model.generate(video, float(arrival), rng))
        t += width

    merged = list(trace) + extra
    merged.sort(key=lambda r: r.t)
    return merged


def inject_rate_surge(
    trace: Sequence[Request],
    t_start: float,
    duration: float,
    multiplier: float,
    rng: np.random.Generator,
) -> List[Request]:
    """Amplify *existing* demand in a window by replaying its requests.

    Every request falling in ``[t_start, t_start + duration)`` is
    duplicated ``multiplier - 1`` times in expectation (fractional parts
    are resolved probabilistically) at jittered timestamps within a few
    minutes — a "everyone tuned in" load spike that preserves the
    window's popularity mix, unlike a flash crowd which concentrates on
    one video.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if multiplier < 1.0:
        raise ValueError(f"multiplier must be >= 1, got {multiplier}")
    t_end = t_start + duration
    extra: List[Request] = []
    for request in trace:
        if not t_start <= request.t < t_end:
            continue
        copies = int(multiplier - 1.0)
        if rng.random() < (multiplier - 1.0) - copies:
            copies += 1
        for _ in range(copies):
            jitter = float(rng.uniform(0.0, 300.0))
            t = min(request.t + jitter, t_end - 1e-6)
            extra.append(Request(t, request.video, request.b0, request.b1))
    merged = list(trace) + extra
    merged.sort(key=lambda r: r.t)
    return merged
