"""Diurnal arrival process: non-homogeneous Poisson session arrivals.

Figure 3 of the paper shows clear daily peaks in ingress and redirection
("a diurnal pattern ... with their peak values occurring at busy
hours").  Session arrivals are modeled as a Poisson process whose rate
is modulated by a sinusoid with a per-region phase (peak hour) plus an
optional weekend uplift, the standard shape for consumer video traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["DiurnalRate"]

DAY = 86400.0
WEEK = 7 * DAY


@dataclass(frozen=True, slots=True)
class DiurnalRate:
    """Arrival-rate profile ``rate(t)`` in sessions per second.

    ``base_rate`` is the daily mean; ``amplitude`` in [0, 1) scales the
    sinusoidal swing (0.6 means busy hours run 1.6x the mean and the
    trough 0.4x); ``peak_hour`` localizes the evening peak;
    ``weekend_boost`` multiplies Saturday/Sunday rates.
    """

    base_rate: float
    amplitude: float = 0.6
    peak_hour: float = 20.0
    weekend_boost: float = 1.15

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError(f"base_rate must be positive, got {self.base_rate}")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {self.amplitude}")
        if self.weekend_boost <= 0:
            raise ValueError("weekend_boost must be positive")

    def rate(self, t: float) -> float:
        """Instantaneous arrival rate at trace-relative time ``t``."""
        hour_angle = 2.0 * math.pi * ((t / DAY) - self.peak_hour / 24.0)
        daily = 1.0 + self.amplitude * math.cos(hour_angle)
        day_index = int(t // DAY) % 7
        weekly = self.weekend_boost if day_index >= 5 else 1.0
        return self.base_rate * daily * weekly

    def arrivals(
        self, duration: float, rng: np.random.Generator, step: float = 900.0
    ) -> Iterator[float]:
        """Yield sorted arrival times over ``[0, duration)``.

        Piecewise-constant approximation: within each ``step``-second
        slice the rate is frozen, a Poisson count is drawn, and arrival
        times are placed uniformly.  With a 15-minute step the sinusoid
        is sampled ~100x per period, so the approximation error is far
        below the Poisson noise.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        t = 0.0
        while t < duration:
            width = min(step, duration - t)
            midpoint_rate = self.rate(t + width / 2.0)
            count = rng.poisson(midpoint_rate * width)
            if count:
                times = np.sort(rng.uniform(t, t + width, size=count))
                yield from times.tolist()
            t += width

    def expected_sessions(self, duration: float, step: float = 900.0) -> float:
        """Integral of the rate over ``[0, duration)`` (same grid)."""
        total = 0.0
        t = 0.0
        while t < duration:
            width = min(step, duration - t)
            total += self.rate(t + width / 2.0) * width
            t += width
        return total
