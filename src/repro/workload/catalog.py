"""Video catalog: file sizes, birth times, and popularity ranks.

A catalog is the population the trace generator samples from.  Sizes
follow a clipped lognormal (most videos are a few minutes, a tail of
long-form content), matching the broad size spread observed in YouTube
workload studies [11].  Part of the catalog exists when the trace
starts; the rest is *churn* — videos born during the trace that ramp up
and decay (handled by :mod:`repro.workload.popularity`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["Video", "VideoCatalog"]


@dataclass(frozen=True, slots=True)
class Video:
    """One catalog entry."""

    video_id: int
    size_bytes: int
    #: popularity rank among catalog peers (0 = most popular)
    rank: int
    #: trace-relative birth time in seconds; <= 0 means pre-existing
    birth: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"video size must be positive, got {self.size_bytes}")


class VideoCatalog:
    """A fixed population of videos with generation helpers."""

    def __init__(self, videos: List[Video]) -> None:
        if not videos:
            raise ValueError("catalog must contain at least one video")
        self.videos = videos
        self._by_id = {v.video_id: v for v in videos}
        if len(self._by_id) != len(videos):
            raise ValueError("duplicate video IDs in catalog")

    def __len__(self) -> int:
        return len(self.videos)

    def __getitem__(self, video_id: int) -> Video:
        return self._by_id[video_id]

    def __contains__(self, video_id: int) -> bool:
        return video_id in self._by_id

    @property
    def total_bytes(self) -> int:
        """Catalog footprint if everything were stored."""
        return sum(v.size_bytes for v in self.videos)

    @classmethod
    def generate(
        cls,
        num_videos: int,
        seed: int = 0,
        mean_size_bytes: float = 24e6,
        sigma: float = 0.9,
        min_size_bytes: int = 1 << 20,
        max_size_bytes: int = 512 << 20,
        churn_fraction: float = 0.25,
        duration: float = 30 * 86400.0,
        first_id: int = 0,
    ) -> "VideoCatalog":
        """Generate a catalog of ``num_videos``.

        ``churn_fraction`` of the videos are born uniformly during
        ``[0, duration)``; the rest pre-exist.  Popularity ranks are a
        random permutation — per-server local popularity is
        uncorrelated with any global ordering [28], so each server's
        catalog gets its own ranking via its own ``seed``.

        Sizes are lognormal with the given linear-space mean, clipped to
        ``[min_size_bytes, max_size_bytes]``.
        """
        if num_videos <= 0:
            raise ValueError(f"num_videos must be positive, got {num_videos}")
        if not 0.0 <= churn_fraction < 1.0:
            raise ValueError(f"churn_fraction must be in [0, 1), got {churn_fraction}")
        rng = np.random.default_rng(seed)
        # lognormal parameterized so the linear mean is mean_size_bytes
        mu = np.log(mean_size_bytes) - sigma**2 / 2.0
        sizes = np.clip(
            rng.lognormal(mu, sigma, size=num_videos),
            min_size_bytes,
            max_size_bytes,
        ).astype(np.int64)
        ranks = rng.permutation(num_videos)
        births = np.full(num_videos, -1.0)
        num_churn = int(num_videos * churn_fraction)
        if num_churn:
            churn_idx = rng.choice(num_videos, size=num_churn, replace=False)
            births[churn_idx] = rng.uniform(0.0, duration, size=num_churn)
        videos = [
            Video(
                video_id=first_id + i,
                size_bytes=int(sizes[i]),
                rank=int(ranks[i]),
                birth=float(births[i]),
            )
            for i in range(num_videos)
        ]
        return cls(videos)

    def sizes_array(self) -> np.ndarray:
        """Sizes indexed by catalog position (generation order)."""
        return np.array([v.size_bytes for v in self.videos], dtype=np.int64)

    def subset(self, video_ids: list[int]) -> "VideoCatalog":
        """A catalog restricted to the given IDs (order preserved)."""
        missing = [v for v in video_ids if v not in self._by_id]
        if missing:
            raise KeyError(f"IDs not in catalog: {missing[:5]}...")
        return VideoCatalog([self._by_id[v] for v in video_ids])

    def describe(self) -> dict:
        """Plain-dict summary for logs and docs."""
        sizes = self.sizes_array()
        return {
            "videos": len(self),
            "total_gb": float(sizes.sum()) / 1e9,
            "mean_mb": float(sizes.mean()) / 1e6,
            "p50_mb": float(np.median(sizes)) / 1e6,
            "p99_mb": float(np.percentile(sizes, 99)) / 1e6,
            "churn": sum(1 for v in self.videos if v.birth >= 0) / len(self),
        }
