"""Psychic Cache: the offline greedy estimator of Section 8.

Psychic knows the future request sequence but tracks nothing about the
past.  For every chunk ``x`` it keeps the (bounded) list ``L_x`` of the
timestamps of its next ``N`` future requests (the paper finds ``N = 10``
sufficient) and decides serve-vs-redirect with the Cafe-style expected
costs, computing the future value of a chunk directly from its future
requests (Eqs. 13–14)::

    value(x) = sum_{t in L_x} T / (t - t_now)

"a fast computable combination of how far in the future and how
frequent the chunk is requested".  Eviction victims are the cached
chunks requested farthest in the future (never-again chunks first),
Belady-style.  The horizon ``T`` is the cache age, which — having no
past to derive it from — is "tracked separately as the average time
that the evicted chunks have stayed in the cache".

Its efficiency serves as the practical upper bound ("maximum expected
efficiency") against which the online caches are judged in Section 9.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Deque, Dict, Optional, Sequence

from repro.core.base import CacheResponse, Decision, VideoCache
from repro.core.costs import CostModel
from repro.structures.scoreheap import ScoreHeap
from repro.trace.requests import DEFAULT_CHUNK_BYTES, ChunkId, Request

__all__ = ["PsychicCache"]

_INF = float("inf")

#: Lookahead bound from the paper: "N = 10 has proven sufficient in our
#: experiments — no gain with higher values".
DEFAULT_LOOKAHEAD = 10

#: Gap clamp for same-timestamp future requests, so 1/(t - t_now) stays
#: finite: an immediate re-request is simply extremely valuable.
_MIN_GAP = 1e-9


class PsychicCache(VideoCache):
    """Offline greedy cache aware of future requests (§8)."""

    name = "Psychic"
    offline = True

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
        lookahead: int = DEFAULT_LOOKAHEAD,
        treap_seed: int = 0,
    ) -> None:
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        if lookahead <= 0:
            raise ValueError(f"lookahead must be positive, got {lookahead}")
        self.lookahead = lookahead
        #: chunk -> timestamps of its not-yet-replayed requests
        self._future: Dict[ChunkId, Deque[float]] = {}
        #: cached chunks keyed by -(next request time): never-requested-
        #: again chunks (key -inf) are evicted first, then farthest-next.
        self._cached: ScoreHeap[ChunkId] = ScoreHeap(seed=treap_seed)
        self._admit_time: Dict[ChunkId, float] = {}
        self._prepared: Optional[Sequence[Request]] = None
        self._cursor = 0
        self._t0 = 0.0
        self._evictions = 0
        self._residence_sum = 0.0

    # -- VideoCache interface ------------------------------------------------

    def prepare(self, requests: Sequence[Request]) -> None:
        """Index the full request sequence (must precede any handle())."""
        self._future.clear()
        for r in requests:
            for chunk in r.chunk_ids(self.chunk_bytes):
                self._future.setdefault(chunk, deque()).append(r.t)
        self._prepared = requests
        self._cursor = 0
        self._t0 = requests[0].t if requests else 0.0

    def handle(self, request: Request) -> CacheResponse:
        if self._prepared is None:
            raise RuntimeError("PsychicCache.handle() before prepare()")
        if (
            self._cursor >= len(self._prepared)
            or self._prepared[self._cursor] != request
        ):
            raise RuntimeError(
                "requests must be replayed to PsychicCache in exactly the "
                "order given to prepare()"
            )
        self._cursor += 1

        now = request.t
        chunks = list(request.chunk_ids(self.chunk_bytes))

        # Consume this occurrence of every requested chunk, and re-key
        # cached ones by their *new* next request time.
        for chunk in chunks:
            queue = self._future.get(chunk)
            if queue:
                queue.popleft()
            if chunk in self._cached:
                self._cached.insert(chunk, self._eviction_key(chunk))

        if len(chunks) > self.disk_chunks:
            return CacheResponse(Decision.REDIRECT)

        missing = [c for c in chunks if c not in self._cached]
        if not missing:
            return CacheResponse(Decision.SERVE)

        horizon = self.cache_age(now)
        future_unit = self.cost_model.future_cost
        free = self.disk_chunks - len(self._cached)
        n_evict = max(0, len(missing) - free)
        victims = self._cached.n_smallest(n_evict, exclude=set(chunks))

        cost_serve = len(missing) * self.cost_model.fill_cost
        for chunk, _key in victims:
            cost_serve += self._future_value(chunk, now, horizon) * future_unit

        cost_redirect = len(chunks) * self.cost_model.redirect_cost
        for chunk in missing:
            cost_redirect += self._future_value(chunk, now, horizon) * future_unit

        if cost_serve > cost_redirect:
            return CacheResponse(Decision.REDIRECT)

        for chunk, _key in victims:
            self._cached.remove(chunk)
            self._record_eviction(chunk, now)
        for chunk in missing:
            self._cached.insert(chunk, self._eviction_key(chunk))
            self._admit_time[chunk] = now
        return CacheResponse(
            Decision.SERVE, filled_chunks=len(missing), evicted_chunks=len(victims)
        )

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._cached

    def __len__(self) -> int:
        return len(self._cached)

    # -- Psychic specifics ----------------------------------------------------

    def cache_age(self, now: float) -> float:
        """Average residence time of evicted chunks (Section 8).

        Before the first eviction there is no sample; the time elapsed
        since the trace start is the natural stand-in (every cached
        chunk has resided at most that long).
        """
        if self._evictions == 0:
            return max(now - self._t0, _MIN_GAP)
        return self._residence_sum / self._evictions

    def future_times(self, chunk: ChunkId) -> list[float]:
        """The bounded future-request list ``L_x`` (next N timestamps)."""
        queue = self._future.get(chunk)
        if not queue:
            return []
        return list(islice(queue, self.lookahead))

    def _future_value(self, chunk: ChunkId, now: float, horizon: float) -> float:
        """Eqs. 13–14 inner sum: ``sum_{t in L_x} T / (t - now)``."""
        queue = self._future.get(chunk)
        if not queue:
            return 0.0
        total = 0.0
        for t in islice(queue, self.lookahead):
            total += horizon / max(t - now, _MIN_GAP)
        return total

    def _eviction_key(self, chunk: ChunkId) -> float:
        """Ascending-order key: farthest next request evicts first."""
        queue = self._future.get(chunk)
        next_t = queue[0] if queue else _INF
        return -next_t

    def _record_eviction(self, chunk: ChunkId, now: float) -> None:
        admitted = self._admit_time.pop(chunk, None)
        if admitted is None:
            return
        self._evictions += 1
        self._residence_sum += now - admitted
