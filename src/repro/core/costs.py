"""The ingress-vs-redirect cost model (Section 4.1–4.2).

Every cache-filled byte costs ``C_F`` and every redirected byte costs
``C_R``; only their ratio ``alpha_F2R = C_F / C_R`` matters, so they are
normalized to ``C_F + C_R = 2`` (Eq. 3), giving (Eq. 4)::

    C_F = 2 * alpha / (alpha + 1)       C_R = 2 / (alpha + 1)

``alpha_F2R`` encodes the CDN's preference at a server:

* ``alpha > 1`` — ingress-constrained (saturated egress, disk-write
  pressure, backbone cost): fetch new content only when clearly worth it
  (the paper's default for constrained servers is 2);
* ``alpha = 1`` — ingress and redirect cost the same (the common case,
  e.g. a remote rack inside the user's ISP);
* ``alpha < 1`` — cheap/spare ingress (e.g. 0.5–0.75).

Cache efficiency (Eq. 2) is ``1 - fill_share * C_F - redirect_share *
C_R`` where the shares are of total requested bytes; it lies in
``[-1, 1]`` and maximizing it is equivalent to minimizing total cost
(Eq. 1).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel"]


@dataclass(frozen=True, slots=True)
class CostModel:
    """Normalized fill/redirect costs derived from ``alpha_f2r`` (Eq. 4)."""

    alpha_f2r: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha_f2r <= 0:
            raise ValueError(f"alpha_f2r must be positive, got {self.alpha_f2r}")

    @property
    def fill_cost(self) -> float:
        """``C_F`` — cost per cache-filled byte (Eq. 4)."""
        return 2.0 * self.alpha_f2r / (self.alpha_f2r + 1.0)

    @property
    def redirect_cost(self) -> float:
        """``C_R`` — cost per redirected byte (Eq. 4)."""
        return 2.0 / (self.alpha_f2r + 1.0)

    @property
    def future_cost(self) -> float:
        """``min(C_F, C_R)`` — the cost charged per expected future
        request for a chunk we will not hold (Eqs. 6–7, 13–14): we will
        most likely take whichever of fill/redirect is cheaper then."""
        return min(self.fill_cost, self.redirect_cost)

    def total_cost(self, ingress_bytes: float, redirected_bytes: float) -> float:
        """Eq. 1: ``ingress * C_F + redirected * C_R``."""
        if ingress_bytes < 0 or redirected_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        return ingress_bytes * self.fill_cost + redirected_bytes * self.redirect_cost

    def efficiency(
        self,
        requested_bytes: float,
        ingress_bytes: float,
        redirected_bytes: float,
    ) -> float:
        """Eq. 2: cache efficiency in ``[-1, 1]``.

        ``requested_bytes`` is the total over all requests; ``ingress``
        counts whole fetched chunks (a chunk is fetched in full even if
        requested partially), ``redirected`` counts requested bytes of
        redirected requests.
        """
        if requested_bytes <= 0:
            raise ValueError("requested_bytes must be positive")
        return 1.0 - self.total_cost(ingress_bytes, redirected_bytes) / requested_bytes
