"""Cache state snapshots: persist and restore a warm cache.

A production cache server restarts without losing its disk; a
simulation should be able to do the same — checkpoint a warmed cache,
restart the process, and continue the replay.  This module serializes
the two online paper caches to plain JSON-able dicts:

* **xLRU** — popularity tracker entries and disk-chunk entries, each in
  recency order with access times;
* **Cafe** — per-chunk EWMA records (``dt``, ``t_last``), the cached
  chunk set, and the ghost list.

Restores are *logically* exact: every lookup, IAT, key and admission
decision matches the original state.  The one caveat is tie-breaking
among equal-keyed chunks in Cafe's treap (its internal sequence numbers
restart), which can reorder evictions between exactly-tied chunks.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Union

from repro.core.cafe import CafeCache
from repro.core.xlru import XlruCache

__all__ = ["state_dict", "load_state_dict", "save_snapshot", "load_snapshot"]

_FORMAT_VERSION = 1


def state_dict(cache: Union[XlruCache, CafeCache]) -> dict:
    """Extract a JSON-able snapshot of a supported cache's state."""
    if isinstance(cache, XlruCache):
        return {
            "version": _FORMAT_VERSION,
            "kind": "xlru",
            "disk_chunks": cache.disk_chunks,
            "chunk_bytes": cache.chunk_bytes,
            "alpha_f2r": cache.cost_model.alpha_f2r,
            "tracker": [[video, t] for video, t in cache._tracker.items()],
            "disk": [[v, c, t] for (v, c), t in cache._disk.items()],
        }
    if isinstance(cache, CafeCache):
        return {
            "version": _FORMAT_VERSION,
            "kind": "cafe",
            "disk_chunks": cache.disk_chunks,
            "chunk_bytes": cache.chunk_bytes,
            "alpha_f2r": cache.cost_model.alpha_f2r,
            "gamma": cache._stats.gamma,
            "stats": [
                [v, c, _encode_float(state.dt), state.t_last]
                for (v, c), state in cache._stats.items()
            ],
            "cached": [[v, c] for (v, c), _ in cache._cached.items_ascending()],
            "ghosts": [[v, c, t] for (v, c), t in cache._ghosts.items()],
        }
    raise TypeError(
        f"snapshots support XlruCache and CafeCache, not {type(cache).__name__}"
    )


def load_state_dict(cache: Union[XlruCache, CafeCache], state: dict) -> None:
    """Restore a snapshot into a compatibly configured cache.

    The target must match the snapshot's geometry (disk size, chunk
    size); the cost model may differ — operators retune alpha across
    restarts.
    """
    if state.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported snapshot version {state.get('version')!r}")
    if isinstance(cache, XlruCache):
        expected = "xlru"
    elif isinstance(cache, CafeCache):
        expected = "cafe"
    else:
        raise TypeError(
            f"snapshots support XlruCache and CafeCache, not {type(cache).__name__}"
        )
    if state.get("kind") != expected:
        raise ValueError(
            f"snapshot kind {state.get('kind')!r} cannot load into {expected}"
        )
    if (
        state["disk_chunks"] != cache.disk_chunks
        or state["chunk_bytes"] != cache.chunk_bytes
    ):
        raise ValueError(
            "snapshot geometry mismatch: snapshot "
            f"({state['disk_chunks']} chunks x {state['chunk_bytes']} B) vs "
            f"cache ({cache.disk_chunks} x {cache.chunk_bytes})"
        )
    if isinstance(cache, XlruCache):
        _load_xlru(cache, state)
    else:
        _load_cafe(cache, state)


def save_snapshot(cache: Union[XlruCache, CafeCache], path: Union[str, Path]) -> None:
    """Write a cache snapshot as JSON."""
    with open(path, "w") as fh:
        json.dump(state_dict(cache), fh)


def load_snapshot(cache: Union[XlruCache, CafeCache], path: Union[str, Path]) -> None:
    """Load a JSON snapshot written by :func:`save_snapshot`."""
    with open(path) as fh:
        load_state_dict(cache, json.load(fh))


# -- internals -----------------------------------------------------------------


def _encode_float(value: float) -> Union[float, str]:
    # JSON has no inf; first-sighting dt values are inf
    return "inf" if math.isinf(value) else value


def _decode_float(value: Union[float, str]) -> float:
    return float("inf") if value == "inf" else float(value)


def _load_xlru(cache: XlruCache, state: dict) -> None:
    from repro.structures.lru import AccessRecencyList

    tracker: AccessRecencyList = AccessRecencyList()
    for video, t in state["tracker"]:
        tracker.touch(int(video), float(t))
    disk: AccessRecencyList = AccessRecencyList()
    for v, c, t in state["disk"]:
        disk.touch((int(v), int(c)), float(t))
    if len(disk) > cache.disk_chunks:
        raise ValueError("snapshot holds more chunks than the disk fits")
    cache._tracker = tracker
    cache._disk = disk
    cache._requests_since_cleanup = 0


def _load_cafe(cache: CafeCache, state: dict) -> None:
    from repro.structures.ewma import EwmaIat, IatEstimator
    from repro.structures.lru import AccessRecencyList
    from repro.structures.scoreheap import ScoreHeap

    stats: IatEstimator = IatEstimator(float(state["gamma"]))
    for v, c, dt, t_last in state["stats"]:
        stats[(int(v), int(c))] = EwmaIat(
            dt=_decode_float(dt), t_last=float(t_last)
        )
    cached: ScoreHeap = ScoreHeap(seed=0)
    video_chunks: dict[int, set] = {}
    for v, c in state["cached"]:
        chunk = (int(v), int(c))
        if chunk not in stats:
            raise ValueError(f"cached chunk {chunk} missing IAT state")
        cached.insert(chunk, stats.key(chunk))
        video_chunks.setdefault(chunk[0], set()).add(chunk[1])
    if len(cached) > cache.disk_chunks:
        raise ValueError("snapshot holds more chunks than the disk fits")
    ghosts: AccessRecencyList = AccessRecencyList()
    for v, c, t in state["ghosts"]:
        ghosts.touch((int(v), int(c)), float(t))
    cache._stats = stats
    cache._stats.gamma = float(state["gamma"])
    cache._cached = cached
    cache._ghosts = ghosts
    cache._video_chunks = video_chunks
