"""Cache state snapshots: persist and restore a warm cache.

A production cache server restarts without losing its disk; a
simulation should be able to do the same — checkpoint a warmed cache,
restart the process, and continue the replay.  This module serializes
the online caches to plain JSON-able dicts:

* **xLRU** — popularity tracker entries and disk-chunk entries, each in
  recency order with access times;
* **Cafe** — per-chunk EWMA records (``dt``, ``t_last``), the cached
  chunk set, and the ghost list;
* **PullLRU** — the disk recency list (the whole state of a
  fetch-on-miss LRU);
* **LFU** — video hit counters, chunk frequencies, the cached set in
  eviction order, and the aging cursor.

Restores are *logically* exact: every lookup, IAT, key and admission
decision matches the original state.  Heap-ordered sets (Cafe, LFU)
are persisted in ascending ``(score, seq)`` order and reinserted in
that order, so the relative eviction order among equal-scored chunks
survives the round trip even though internal sequence numbers restart.

Supported cache types register in :data:`SNAPSHOT_KINDS`; asking for
any other type raises a ``TypeError`` naming both the supported set
and the offending type.  ``repro.serve`` builds its crash-recovery
story on these primitives (DESIGN.md §13).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Tuple, Type, Union

from repro.core.baselines import LfuAdmissionCache, PullThroughLruCache
from repro.core.base import VideoCache
from repro.core.cafe import CafeCache
from repro.core.policy import POLICY_REGISTRY, KernelCache
from repro.core.policy import snapshot_kinds as _policy_snapshot_kinds
from repro.core.xlru import XlruCache

__all__ = [
    "SNAPSHOT_KINDS",
    "snapshot_kind",
    "supports_snapshot",
    "state_dict",
    "load_state_dict",
    "save_snapshot",
    "load_snapshot",
]

_FORMAT_VERSION = 1

#: kind tag -> cache class, for every snapshot-supported algorithm.
SNAPSHOT_KINDS: Dict[str, Type[VideoCache]] = {
    "xlru": XlruCache,
    "cafe": CafeCache,
    "pull-lru": PullThroughLruCache,
    "lfu": LfuAdmissionCache,
}
# Every registered policy kernel snapshots through the generic
# KernelCache dumper/loader under the kind tag ``policy:<kind>``.
SNAPSHOT_KINDS.update(_policy_snapshot_kinds())

_POLICY_KIND_TAGS = {spec.kind: name for name, spec in POLICY_REGISTRY.items()}


def snapshot_kind(cache: VideoCache) -> str:
    """The registry kind tag for ``cache``, or raise ``TypeError``.

    The error names the full supported set and the requested type, so
    a caller wiring an unsupported algorithm (e.g. an offline cache)
    into the snapshot path learns exactly what is allowed.
    """
    if isinstance(cache, KernelCache):
        # dispatch on the bound policy, not the (shared) engine type
        if cache.policy.kind in _POLICY_KIND_TAGS:
            return f"policy:{cache.policy.kind}"
        raise TypeError(
            f"policy kind {cache.policy.kind!r} is not registered; "
            f"registered: {sorted(_POLICY_KIND_TAGS)}"
        )
    for kind, cls in SNAPSHOT_KINDS.items():
        # exact-type match: subclasses may add state the base-kind
        # serializer would silently drop
        if type(cache) is cls:
            return kind
    supported = ", ".join(
        sorted({cls.__name__ for cls in SNAPSHOT_KINDS.values()})
    )
    raise TypeError(
        f"snapshots support {{{supported}}}, not {type(cache).__name__}"
    )


def supports_snapshot(cache: VideoCache) -> bool:
    """True when :func:`state_dict` accepts ``cache``."""
    if isinstance(cache, KernelCache):
        return cache.policy.kind in _POLICY_KIND_TAGS
    return type(cache) in SNAPSHOT_KINDS.values()


def state_dict(cache: VideoCache) -> dict:
    """Extract a JSON-able snapshot of a supported cache's state."""
    kind = snapshot_kind(cache)
    state = {
        "version": _FORMAT_VERSION,
        "kind": kind,
        "disk_chunks": cache.disk_chunks,
        "chunk_bytes": cache.chunk_bytes,
        "alpha_f2r": cache.cost_model.alpha_f2r,
    }
    state.update(_DUMPERS[kind](cache))
    return state


def load_state_dict(cache: VideoCache, state: dict) -> None:
    """Restore a snapshot into a compatibly configured cache.

    The target must match the snapshot's geometry (disk size, chunk
    size); the cost model may differ — operators retune alpha across
    restarts.
    """
    if state.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported snapshot version {state.get('version')!r}")
    expected = snapshot_kind(cache)
    if state.get("kind") != expected:
        raise ValueError(
            f"snapshot kind {state.get('kind')!r} cannot load into {expected}"
        )
    if (
        state["disk_chunks"] != cache.disk_chunks
        or state["chunk_bytes"] != cache.chunk_bytes
    ):
        raise ValueError(
            "snapshot geometry mismatch: snapshot "
            f"({state['disk_chunks']} chunks x {state['chunk_bytes']} B) vs "
            f"cache ({cache.disk_chunks} x {cache.chunk_bytes})"
        )
    _LOADERS[expected](cache, state)


def save_snapshot(cache: VideoCache, path: Union[str, Path]) -> None:
    """Write a cache snapshot as JSON."""
    with open(path, "w") as fh:
        json.dump(state_dict(cache), fh)


def load_snapshot(cache: VideoCache, path: Union[str, Path]) -> None:
    """Load a JSON snapshot written by :func:`save_snapshot`."""
    with open(path) as fh:
        load_state_dict(cache, json.load(fh))


# -- internals -----------------------------------------------------------------


def _encode_float(value: float) -> Union[float, str]:
    # JSON has no inf; first-sighting dt values are inf
    return "inf" if math.isinf(value) else value


def _decode_float(value: Union[float, str]) -> float:
    return float("inf") if value == "inf" else float(value)


def _dump_xlru(cache: XlruCache) -> dict:
    return {
        "tracker": [[video, t] for video, t in cache._tracker.items()],
        "disk": [[v, c, t] for (v, c), t in cache._disk.items()],
    }


def _dump_cafe(cache: CafeCache) -> dict:
    return {
        "gamma": cache._stats.gamma,
        "stats": [
            [v, c, _encode_float(state.dt), state.t_last]
            for (v, c), state in cache._stats.items()
        ],
        "cached": [[v, c] for (v, c), _ in cache._cached.items_ascending()],
        "ghosts": [[v, c, t] for (v, c), t in cache._ghosts.items()],
    }


def _dump_pull_lru(cache: PullThroughLruCache) -> dict:
    return {
        "disk": [[v, c, t] for (v, c), t in cache._disk.items()],
    }


def _dump_lfu(cache: LfuAdmissionCache) -> dict:
    # ``cached`` is persisted in ascending (score, seq) order; the
    # loader reinserts in that order, which preserves the relative
    # eviction order among equal-frequency chunks.  Frequencies are
    # dyadic (increments of 1.0, halved by aging), so the JSON float
    # round-trip is exact.
    return {
        "min_video_hits": cache.min_video_hits,
        "aging_interval": cache.aging_interval,
        "handled": cache._handled,
        "video_hits": [[video, hits] for video, hits in cache._video_hits.items()],
        "freq": [[v, c, score] for (v, c), score in cache._freq.items()],
        "cached": [[v, c] for (v, c), _ in cache._cached.items_ascending()],
    }


def _load_xlru(cache: XlruCache, state: dict) -> None:
    from repro.structures.lru import AccessRecencyList

    tracker: AccessRecencyList = AccessRecencyList()
    for video, t in state["tracker"]:
        tracker.touch(int(video), float(t))
    disk: AccessRecencyList = AccessRecencyList()
    for v, c, t in state["disk"]:
        disk.touch((int(v), int(c)), float(t))
    if len(disk) > cache.disk_chunks:
        raise ValueError("snapshot holds more chunks than the disk fits")
    cache._tracker = tracker
    cache._disk = disk
    cache._requests_since_cleanup = 0


def _load_cafe(cache: CafeCache, state: dict) -> None:
    from repro.structures.ewma import EwmaIat, IatEstimator
    from repro.structures.lru import AccessRecencyList
    from repro.structures.scoreheap import ScoreHeap

    stats: IatEstimator = IatEstimator(float(state["gamma"]))
    for v, c, dt, t_last in state["stats"]:
        stats[(int(v), int(c))] = EwmaIat(
            dt=_decode_float(dt), t_last=float(t_last)
        )
    cached: ScoreHeap = ScoreHeap(seed=0)
    video_chunks: dict[int, set] = {}
    for v, c in state["cached"]:
        chunk = (int(v), int(c))
        if chunk not in stats:
            raise ValueError(f"cached chunk {chunk} missing IAT state")
        cached.insert(chunk, stats.key(chunk))
        video_chunks.setdefault(chunk[0], set()).add(chunk[1])
    if len(cached) > cache.disk_chunks:
        raise ValueError("snapshot holds more chunks than the disk fits")
    ghosts: AccessRecencyList = AccessRecencyList()
    for v, c, t in state["ghosts"]:
        ghosts.touch((int(v), int(c)), float(t))
    cache._stats = stats
    cache._stats.gamma = float(state["gamma"])
    cache._cached = cached
    cache._ghosts = ghosts
    cache._video_chunks = video_chunks


def _load_pull_lru(cache: PullThroughLruCache, state: dict) -> None:
    from repro.structures.lru import AccessRecencyList

    disk: AccessRecencyList = AccessRecencyList()
    for v, c, t in state["disk"]:
        disk.touch((int(v), int(c)), float(t))
    if len(disk) > cache.disk_chunks:
        raise ValueError("snapshot holds more chunks than the disk fits")
    cache._disk = disk


def _load_lfu(cache: LfuAdmissionCache, state: dict) -> None:
    from collections import Counter

    from repro.structures.scoreheap import ScoreHeap

    if (
        int(state["min_video_hits"]) != cache.min_video_hits
        or int(state["aging_interval"]) != cache.aging_interval
    ):
        raise ValueError(
            "snapshot admission/aging mismatch: snapshot "
            f"(min_video_hits={state['min_video_hits']}, "
            f"aging_interval={state['aging_interval']}) vs cache "
            f"({cache.min_video_hits}, {cache.aging_interval})"
        )
    freq: Dict[Tuple[int, int], float] = {
        (int(v), int(c)): float(score) for v, c, score in state["freq"]
    }
    cached: ScoreHeap = ScoreHeap(seed=0)
    for v, c in state["cached"]:
        chunk = (int(v), int(c))
        if chunk not in freq:
            raise ValueError(f"cached chunk {chunk} missing frequency state")
        cached.insert(chunk, freq[chunk])
    if len(cached) > cache.disk_chunks:
        raise ValueError("snapshot holds more chunks than the disk fits")
    cache._video_hits = Counter(
        {int(video): int(hits) for video, hits in state["video_hits"]}
    )
    cache._freq = freq
    cache._cached = cached
    cache._handled = int(state["handled"])


def _dump_policy(cache: KernelCache) -> dict:
    # ``cached`` carries explicit scores in ascending (score, seq)
    # order; the loader reinserts in that order, preserving the
    # relative eviction order among equal-scored chunks.  The policy's
    # own state rides along via its state_dict contract.
    return {
        "policy": cache.policy.kind,
        "policy_state": cache.policy.state_dict(),
        "cached": [
            [v, c, _encode_float(score)]
            for (v, c), score in cache._cached.items_ascending()
        ],
    }


def _load_policy(cache: KernelCache, state: dict) -> None:
    from repro.structures.scoreheap import ScoreHeap

    if state["policy"] != cache.policy.kind:
        raise ValueError(
            f"snapshot policy kind {state['policy']!r} cannot load into "
            f"{cache.policy.kind!r}"
        )
    # load_state validates immutable knobs before any engine mutation
    cache.policy.load_state(state["policy_state"])
    cached: ScoreHeap = ScoreHeap(seed=0)
    for v, c, score in state["cached"]:
        cached.insert((int(v), int(c)), _decode_float(score))
    if len(cached) > cache.disk_chunks:
        raise ValueError("snapshot holds more chunks than the disk fits")
    cache._cached = cached


_DUMPERS = {
    "xlru": _dump_xlru,
    "cafe": _dump_cafe,
    "pull-lru": _dump_pull_lru,
    "lfu": _dump_lfu,
}
_DUMPERS.update({tag: _dump_policy for tag in _policy_snapshot_kinds()})

_LOADERS = {
    "xlru": _load_xlru,
    "cafe": _load_cafe,
    "pull-lru": _load_pull_lru,
    "lfu": _load_lfu,
}
_LOADERS.update({tag: _load_policy for tag in _policy_snapshot_kinds()})
