"""Cafe Cache: the Chunk-Aware, Fill-Efficient cache of Section 6.

Cafe aggregates popularity tracking and request admission at chunk
granularity.  For request ``R`` with requested chunk set ``S``, missing
subset ``S'`` and eviction candidates ``S''`` (the ``|S'|`` least
popular cached chunks), it serves or redirects by comparing expected
costs (Eqs. 6–7)::

    E[serve]    = |S'| * C_F + sum_{x in S''} T / IAT_x * min(C_F, C_R)
    E[redirect] = |S|  * C_R + sum_{x in S'}  T / IAT_x * min(C_F, C_R)

``T`` (how far ahead the IAT estimates are trusted) is the cache age —
the paper's choice, which "yielded highest efficiencies".  Inter-arrival
times are EWMA-tracked per chunk (Eq. 8, gamma = 0.25) and chunks are
ordered by the virtual-timestamp key of Eq. 9 in a binary-tree set
(Theorem 1 guarantees the order stays valid over time).

Two further paper details are implemented:

* **unseen-chunk IATs** — a chunk never seen before, from a video with
  chunks in the cache, inherits "the largest recorded IAT among the
  existing chunks" of that video;
* **history cleanup** — IAT records of chunks no longer cached ("ghost"
  records) are retained bounded by ``ghost_factor * disk_chunks`` and
  recycled in LRU order, mirroring "historic data ... is regularly
  cleaned up".  Without ghosts, an evicted-then-re-requested chunk would
  look first-seen and Cafe could never re-admit anything.

Implementation notes beyond the paper's text (documented substitutions):

* A chunk cache-filled with no IAT sample of its own (first fill) is
  seeded with the IAT estimate used in the admission decision so that
  its ordering key is finite; with no usable estimate at all it is
  seeded with the cache age (the natural borderline popularity).
* During warm-up (disk not full) the cache age — and therefore ``T`` —
  is unbounded, which makes the cache admit any content with request
  history while free space remains, consistent with xLRU's warm-up.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.base import (
    REDIRECT,
    SERVE_HIT,
    CacheResponse,
    Decision,
    VideoCache,
    serve_response,
)
from repro.core import kernels
from repro.core.costs import CostModel
from repro.structures.ewma import EwmaIat, IatEstimator
from repro.structures.lru import AccessRecencyList
from repro.structures.scoreheap import ScoreHeap
from repro.trace.requests import DEFAULT_CHUNK_BYTES, ChunkId, Request

__all__ = ["CafeCache", "DecisionExplanation"]

_INF = float("inf")

#: The paper's EWMA weight (Section 9: "gamma = 0.25 in this and other
#: experiments").
DEFAULT_GAMMA = 0.25


@dataclass(frozen=True)
class DecisionExplanation:
    """What :meth:`CafeCache.explain` reports about one request."""

    decision: Decision
    #: Eq. 6 expected serve cost (inf for oversized requests)
    cost_serve: float
    #: Eq. 7 expected redirect cost
    cost_redirect: float
    #: the horizon T used (cache age unless overridden)
    horizon: float
    missing: List = field(default_factory=list)
    victims: List = field(default_factory=list)
    #: IATs the redirect-side future terms used, per missing chunk
    missing_iats: Dict = field(default_factory=dict)
    #: IATs the serve-side eviction terms used, per victim chunk
    victim_iats: Dict = field(default_factory=dict)

    @property
    def margin(self) -> float:
        """``cost_redirect - cost_serve``: positive favours serving."""
        return self.cost_redirect - self.cost_serve


class CafeCache(VideoCache):
    """Chunk-aware, fill-efficient video cache (§6)."""

    name = "Cafe"

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
        gamma: float = DEFAULT_GAMMA,
        horizon: Optional[float] = None,
        ghost_factor: float = 4.0,
        use_video_iat_estimate: bool = True,
        treap_seed: int = 0,
    ) -> None:
        """``horizon``: fixed value for ``T``; None means cache age (the
        paper's choice).  ``use_video_iat_estimate`` toggles the
        unseen-chunk IAT optimization (for ablation).
        """
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        if ghost_factor < 0:
            raise ValueError(f"ghost_factor must be >= 0, got {ghost_factor}")
        if horizon is not None and horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self._stats: IatEstimator[ChunkId] = IatEstimator(gamma)
        self._cached: ScoreHeap[ChunkId] = ScoreHeap(seed=treap_seed)
        self._ghosts: AccessRecencyList[ChunkId] = AccessRecencyList()
        self._video_chunks: dict[int, set[int]] = {}
        self._horizon = horizon
        self._max_ghosts = int(ghost_factor * disk_chunks)
        self._use_video_estimate = use_video_iat_estimate

    # -- VideoCache interface ------------------------------------------------

    def handle(self, request: Request) -> CacheResponse:
        k = self.chunk_bytes
        return self.handle_span(
            request.t,
            request.video,
            request.b0,
            request.b1,
            request.b0 // k,
            request.b1 // k,
        )

    def handle_span(
        self, t: float, video: int, b0: int, b1: int, c0: int, c1: int
    ) -> CacheResponse:
        now = t
        probe = self.probe
        chunks = [(video, c) for c in range(c0, c1 + 1)]

        # Popularity tracking happens regardless of the decision (like
        # xLRU's tracker update before its admission test): fold the
        # access into each chunk's EWMA, then re-key cached chunks.
        stats = self._stats
        cached = self._cached
        ghosts = self._ghosts
        gamma = stats.gamma
        for chunk in chunks:
            state = stats.record(chunk, now)
            if chunk in cached:
                cached.insert(chunk, state.key(gamma))
            elif chunk in ghosts:
                ghosts.touch(chunk, now)

        if len(chunks) > self.disk_chunks:
            self._note_ghosts(chunks, now)
            if probe is not None:
                probe.on_redirect(now, "oversized")
            return REDIRECT

        missing = [c for c in chunks if c not in cached]
        if not missing:
            # Pure hit: serving costs 0, which can never lose.
            if probe is not None:
                probe.on_serve(now, 0, 0)
            return SERVE_HIT

        horizon = self._horizon if self._horizon is not None else self.cache_age(now)
        future_unit = self.cost_model.future_cost

        free = self.disk_chunks - len(cached)
        n_evict = max(0, len(missing) - free)
        victims = cached.n_smallest(n_evict, exclude=set(chunks))

        cost_serve = len(missing) * self.cost_model.fill_cost
        for chunk, _key in victims:
            cost_serve += _future_term(stats.iat(chunk, now), horizon) * future_unit

        cost_redirect = len(chunks) * self.cost_model.redirect_cost
        if probe is None:
            for chunk in missing:
                cost_redirect += _future_term(self._estimate_iat(chunk, now), horizon) * future_unit
        else:
            # Probe lane: identical arithmetic, but each estimate is
            # classified (own history / video fallback / cold) so the
            # IAT-estimator health counters reflect the decision path.
            for chunk in missing:
                iat, source = self._estimate_iat_traced(chunk, now)
                probe.on_iat_estimate(source)
                cost_redirect += _future_term(iat, horizon) * future_unit
            probe.on_margin(cost_redirect - cost_serve)

        if cost_serve > cost_redirect:
            self._note_ghosts(chunks, now)
            if probe is not None:
                probe.on_redirect(now, "cost")
            return REDIRECT

        for chunk, _key in victims:
            if probe is not None:
                probe.on_evict(now, chunk, stats[chunk].t_last)
            self._evict(chunk, now)
        for chunk in missing:
            self._admit(chunk, now)
        self._collect_ghosts()
        if probe is not None:
            for chunk in missing:
                probe.on_fill(now, chunk)
            probe.on_serve(now, len(missing), len(victims))
        return serve_response(len(missing), len(victims))

    def handle_span_block_kernel(self, block) -> "tuple[list, list]":
        """Pure-hit pre-screen over one packed block.

        A span fully resident at block start stays resident until the
        first in-block eviction (fills only add chunks), and a pure hit
        takes one fixed mutation path in :meth:`handle_span`: fold the
        access into each chunk's EWMA and re-key it in the frequency
        set — the ghost branch is unreachable (cached and ghost sets
        are disjoint), the oversized branch impossible (a span larger
        than the disk cannot be fully resident) and the cost comparison
        is skipped entirely (serving costs zero).  Screened requests
        therefore run exactly that grouped record/re-key loop; the
        first eviction demotes the remaining screened hits back to the
        scalar walk.  Observably identical to
        :meth:`handle_span_block` (the fallback when the block is not
        vectorized or a probe is attached).
        """
        if self.probe is not None or not block.vectorized:
            return VideoCache.handle_span_block_kernel(self, block)
        uniq, _order, _starts = block.video_groups()
        arrays = kernels.residency_arrays(uniq, self._video_chunks)
        counts = kernels.span_resident_counts(block, arrays)
        screen = (counts == (block.c1s - block.c0s + 1)).tolist()

        stats = self._stats
        record = stats.record
        gamma = stats.gamma
        insert = self._cached.insert
        handle_span = self.handle_span
        responses: list = []
        append = responses.append
        misses: list = []
        miss = misses.append
        hits_valid = True
        i = -1
        for t, video, b0, b1, c0, c1 in zip(
            block.ts_l,
            block.videos_l,
            block.b0s_l,
            block.b1s_l,
            block.c0s_l,
            block.c1s_l,
        ):
            i += 1
            if hits_valid and screen[i]:
                for c in range(c0, c1 + 1):
                    chunk = (video, c)
                    insert(chunk, record(chunk, t).key(gamma))
                append(SERVE_HIT)
                continue
            response = handle_span(t, video, b0, b1, c0, c1)
            if response.evicted_chunks:
                hits_valid = False
            append(response)
            if response is not SERVE_HIT:
                miss(i)
        return responses, misses

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._cached

    def __len__(self) -> int:
        return len(self._cached)

    # -- Cafe specifics -------------------------------------------------------

    def explain(self, request: Request) -> "DecisionExplanation":
        """The Eqs. 6–7 cost breakdown for ``request`` — without acting.

        A dry run: the per-chunk EWMA updates that ``handle`` would
        apply are computed on copies, so the cache is untouched and the
        explained costs are exactly the ones ``handle`` would compare
        if called with this request right now.  Inspection/debug API.
        """
        now = request.t
        chunks = list(request.chunk_ids(self.chunk_bytes))

        # shadow the stats updates handle() would apply
        gamma = self._stats.gamma
        shadow: dict[ChunkId, EwmaIat] = {}
        for chunk in chunks:
            state = self._stats.get(chunk)
            if state is None:
                shadow[chunk] = EwmaIat(dt=_INF, t_last=now)
            else:
                clone = EwmaIat(dt=state.dt, t_last=state.t_last)
                clone.update(now, gamma)
                shadow[chunk] = clone

        def shadow_iat(chunk: ChunkId) -> float:
            if chunk in shadow:
                return shadow[chunk].iat(now, gamma)
            return self._stats.iat(chunk, now)

        def shadow_estimate(chunk: ChunkId) -> float:
            # _estimate_iat, but against post-update (shadow) sibling
            # stats — handle() records the whole request before
            # estimating, so the sibling keys it scans are fresh
            own = shadow_iat(chunk)
            if not math.isinf(own):
                return own
            if not self._use_video_estimate:
                return _INF
            siblings = self._video_chunks.get(chunk[0])
            if not siblings:
                return _INF
            best_key, best_iat = _INF, _INF
            for number in siblings:
                sibling = (chunk[0], number)
                if sibling in shadow:
                    key = shadow[sibling].key(gamma)
                    iat = shadow[sibling].iat(now, gamma)
                else:
                    key = self._stats.key(sibling)
                    iat = self._stats.iat(sibling, now)
                if key < best_key:
                    best_key, best_iat = key, iat
            return best_iat

        def shadow_cache_age() -> float:
            # handle() re-keys requested cached chunks before reading
            # the cache age; mirror that against the shadow states
            if len(self._cached) < self.disk_chunks:
                return _INF
            best_key = _INF
            best_iat = _INF
            top = self._cached.n_smallest(1, exclude=set(chunks))
            if top:
                item, key = top[0]
                best_key, best_iat = key, self._stats.iat(item, now)
            for chunk in chunks:
                if chunk in self._cached:
                    key = shadow[chunk].key(gamma)
                    if key < best_key:
                        best_key = key
                        best_iat = shadow[chunk].iat(now, gamma)
            return best_iat

        missing = [c for c in chunks if c not in self._cached]
        oversized = len(chunks) > self.disk_chunks
        if not missing or oversized:
            decision = Decision.REDIRECT if oversized else Decision.SERVE
            return DecisionExplanation(
                decision=decision,
                cost_serve=0.0 if not oversized else _INF,
                cost_redirect=len(chunks) * self.cost_model.redirect_cost,
                horizon=shadow_cache_age(),
                missing=missing,
                victims=[],
                missing_iats={c: shadow_iat(c) for c in missing},
            )

        horizon = (
            self._horizon if self._horizon is not None else shadow_cache_age()
        )
        future_unit = self.cost_model.future_cost
        free = self.disk_chunks - len(self._cached)
        n_evict = max(0, len(missing) - free)
        victims = self._cached.n_smallest(n_evict, exclude=set(chunks))

        cost_serve = len(missing) * self.cost_model.fill_cost
        victim_iats = {}
        for chunk, _key in victims:
            iat = shadow_iat(chunk)
            victim_iats[chunk] = iat
            cost_serve += _future_term(iat, horizon) * future_unit

        cost_redirect = len(chunks) * self.cost_model.redirect_cost
        missing_iats = {}
        for chunk in missing:
            iat = shadow_estimate(chunk)
            missing_iats[chunk] = iat
            cost_redirect += _future_term(iat, horizon) * future_unit

        decision = (
            Decision.SERVE if cost_serve <= cost_redirect else Decision.REDIRECT
        )
        return DecisionExplanation(
            decision=decision,
            cost_serve=cost_serve,
            cost_redirect=cost_redirect,
            horizon=horizon,
            missing=missing,
            victims=[chunk for chunk, _key in victims],
            missing_iats=missing_iats,
            victim_iats=victim_iats,
        )

    def cache_age(self, now: float) -> float:
        """The IAT of the least popular cached chunk; the horizon T.

        Section 5 models "the popularity of the least popular chunk on
        disk" as ``IAT_0 = CacheAge`` — in xLRU that IAT is literally
        ``now - t_oldest``, the cache age.  Cafe generalizes: the least
        popular chunk is the minimum-key one (Theorem 1 order), and its
        Eq. 8 IAT evaluated now is the horizon.  Unbounded while the
        disk is not full (warm-up), like xLRU.
        """
        if len(self._cached) < self.disk_chunks:
            return _INF
        item, _min_key = self._cached.min_item()
        return self._stats.iat(item, now)

    def chunk_iat(self, chunk: ChunkId, now: float) -> float:
        """The tracked Eq. 8 IAT of a chunk (inf if never seen twice)."""
        return self._stats.iat(chunk, now)

    @property
    def tracked_chunks(self) -> int:
        """Chunks with IAT state (cached + ghosts)."""
        return len(self._stats)

    @property
    def ghost_chunks(self) -> int:
        """Evicted/redirected chunks whose IAT history is retained."""
        return len(self._ghosts)

    def _estimate_iat(self, chunk: ChunkId, now: float) -> float:
        """IAT for a missing chunk: own history, else the video estimate.

        The video estimate is "the largest recorded IAT among the
        existing chunks" of the chunk's video (Section 6).  By
        Theorem 1, the largest-IAT cached chunk of a video is the one
        with the smallest virtual key, so a key scan suffices.
        """
        own = self._stats.iat(chunk, now)
        if not math.isinf(own):
            return own
        if not self._use_video_estimate:
            return _INF
        video = chunk[0]
        siblings = self._video_chunks.get(video)
        if not siblings:
            return _INF
        worst = min(
            ((video, c) for c in siblings),
            key=lambda ch: self._cached.score(ch),
        )
        return self._stats.iat(worst, now)

    def _estimate_iat_traced(self, chunk: ChunkId, now: float) -> tuple:
        """:meth:`_estimate_iat` plus the estimate's provenance.

        Returns ``(iat, source)`` with ``source`` one of ``"own"``,
        ``"video"`` (the unseen-chunk max-IAT fallback) or ``"cold"``.
        Kept separate from :meth:`_estimate_iat` so the probe-free hot
        path never allocates the tuple; the arithmetic is identical.
        """
        own = self._stats.iat(chunk, now)
        if not math.isinf(own):
            return own, "own"
        if not self._use_video_estimate:
            return _INF, "cold"
        video = chunk[0]
        siblings = self._video_chunks.get(video)
        if not siblings:
            return _INF, "cold"
        worst = min(
            ((video, c) for c in siblings),
            key=lambda ch: self._cached.score(ch),
        )
        iat = self._stats.iat(worst, now)
        return iat, ("video" if not math.isinf(iat) else "cold")

    def _admit(self, chunk: ChunkId, now: float) -> None:
        state = self._stats[chunk]
        if math.isinf(state.dt):
            # First fill with no IAT sample: seed with the estimate the
            # admission decision used, falling back to the cache age.
            seed = self._estimate_iat(chunk, now)
            if math.isinf(seed):
                seed = self.cache_age(now)
            if math.isinf(seed):
                seed = 1.0
            state.dt = seed
        self._cached.insert(chunk, state.key(self._stats.gamma))
        self._ghosts.discard(chunk)
        self._video_chunks.setdefault(chunk[0], set()).add(chunk[1])

    def _evict(self, chunk: ChunkId, now: float) -> None:
        self._cached.remove(chunk)
        siblings = self._video_chunks.get(chunk[0])
        if siblings is not None:
            siblings.discard(chunk[1])
            if not siblings:
                del self._video_chunks[chunk[0]]
        if self._max_ghosts > 0:
            self._ghosts.touch(chunk, now)
        else:
            del self._stats[chunk]

    def _note_ghosts(self, chunks: list[ChunkId], now: float) -> None:
        """Track redirected, uncached chunks as ghosts so their history
        survives until cleanup."""
        if self._max_ghosts <= 0:
            for chunk in chunks:
                if chunk not in self._cached:
                    self._stats.pop(chunk, None)
            return
        for chunk in chunks:
            if chunk not in self._cached and chunk not in self._ghosts:
                self._ghosts.touch(chunk, now)
        self._collect_ghosts()

    def _collect_ghosts(self) -> None:
        """Bound ghost history, recycling least recently seen records."""
        while len(self._ghosts) > self._max_ghosts:
            chunk, _t = self._ghosts.pop_oldest()
            self._stats.pop(chunk, None)


def _future_term(iat: float, horizon: float) -> float:
    """Expected future requests in the horizon: ``T / IAT`` (Eqs. 6–7).

    A chunk with no IAT (inf) contributes nothing even under an
    unbounded warm-up horizon; a chunk *with* history under an unbounded
    horizon contributes unboundedly (it will surely be requested again).
    An IAT of zero (same-timestamp repeats) means "maximally popular" —
    clamped so the term stays a large finite number.
    """
    if math.isinf(iat):
        return 0.0
    if math.isinf(horizon):
        return _INF
    return horizon / max(iat, 1e-9)
