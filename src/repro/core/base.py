"""Common cache-server interface (Problem 1 / Problem 2 of Section 4.3).

Every algorithm sees the same stream of :class:`~repro.trace.Request`
objects and must, per request, either **serve** it (cache-filling any
missing chunks, evicting to make room) or **redirect** it.  The response
reports what happened so the simulation engine can do the byte
accounting without reaching into cache internals.

Offline algorithms (Psychic, Optimal, Belady) additionally receive the
full request sequence up front through :meth:`VideoCache.prepare`.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.core.costs import CostModel
from repro.trace.requests import DEFAULT_CHUNK_BYTES, ChunkId, Request

__all__ = [
    "Decision",
    "CacheResponse",
    "REDIRECT",
    "SERVE_HIT",
    "VideoCache",
    "serve_response",
]


class Decision(enum.Enum):
    """The two possible outcomes for a request (Section 4.3)."""

    SERVE = "serve"
    REDIRECT = "redirect"


@dataclass(frozen=True, slots=True)
class CacheResponse:
    """What the cache did with one request.

    ``filled_chunks`` is the number of chunks fetched over the ingress
    link (0 when redirecting or fully hitting); ``evicted_chunks`` the
    number evicted to make room.  Ingress bytes are
    ``filled_chunks * chunk_bytes`` since chunks are fetched in full.
    """

    decision: Decision
    filled_chunks: int = 0
    evicted_chunks: int = 0

    def __post_init__(self) -> None:
        if self.filled_chunks < 0 or self.evicted_chunks < 0:
            raise ValueError("chunk counts must be non-negative")
        if self.decision is Decision.REDIRECT and self.filled_chunks:
            raise ValueError("a redirected request cannot cache-fill")

    @property
    def served(self) -> bool:
        return self.decision is Decision.SERVE


#: Shared immutable responses for the two outcomes that carry no counts.
#: ``CacheResponse`` is a frozen value object, so reusing one instance is
#: safe and avoids a dataclass construction in the replay hot path.
REDIRECT = CacheResponse(Decision.REDIRECT)
SERVE_HIT = CacheResponse(Decision.SERVE)

#: Interned SERVE responses keyed by (filled, evicted).  The key space
#: is bounded by the per-request chunk count squared (requests larger
#: than the disk are redirected), so the table stays small while the
#: hot path skips CacheResponse.__post_init__ for repeated shapes.
_SERVE_RESPONSES: dict[tuple[int, int], CacheResponse] = {}


def serve_response(filled_chunks: int, evicted_chunks: int = 0) -> CacheResponse:
    """A SERVE :class:`CacheResponse`, value-interned for the hot path."""
    key = (filled_chunks, evicted_chunks)
    response = _SERVE_RESPONSES.get(key)
    if response is None:
        response = CacheResponse(Decision.SERVE, filled_chunks, evicted_chunks)
        _SERVE_RESPONSES[key] = response
    return response


class VideoCache(ABC):
    """Abstract video cache server.

    Concrete caches implement :meth:`handle`; the constructor fixes the
    disk size (in chunks), the chunk size and the cost model — the three
    knobs the paper's experiments sweep.
    """

    #: Short algorithm name used in reports ("xLRU", "Cafe", ...).
    name: str = "abstract"
    #: Whether the algorithm needs the full future sequence (Problem 2).
    offline: bool = False
    #: Whether serve/redirect/evict decisions consult ``cost_model``.
    #: When False (e.g. pull-through LRU), replay outcomes are identical
    #: at every ``alpha_F2R`` and sweep schedulers may simulate one
    #: alpha and reinterpret the traffic counters for the others.
    cost_sensitive: bool = True

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
    ) -> None:
        if disk_chunks <= 0:
            raise ValueError(f"disk_chunks must be positive, got {disk_chunks}")
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        self.disk_chunks = disk_chunks
        self.chunk_bytes = chunk_bytes
        self.cost_model = cost_model if cost_model is not None else CostModel()
        #: Optional telemetry probe (see :mod:`repro.obs.probes`).  The
        #: hot paths of instrumented caches call its hooks only when it
        #: is set, so a probe-free replay pays one ``is None`` check per
        #: request.  Probes must be pure observers: attaching one never
        #: changes serve/redirect decisions.
        self.probe = None

    # -- lifecycle ----------------------------------------------------------

    def prepare(self, requests: Sequence[Request]) -> None:
        """Offline hook: receive the full request sequence before replay.

        Online caches ignore it; offline caches build their future
        indexes here.  Called exactly once, before the first
        :meth:`handle`.
        """

    @abstractmethod
    def handle(self, request: Request) -> CacheResponse:
        """Serve or redirect ``request``, updating cache state.

        Requests must arrive in non-decreasing timestamp order.
        """

    def handle_span(
        self, t: float, video: int, b0: int, b1: int, c0: int, c1: int
    ) -> CacheResponse:
        """Handle one request given as packed scalar columns.

        ``(c0, c1)`` is the inclusive chunk range already derived for
        this cache's ``chunk_bytes``.  The default materializes a
        :class:`Request` and delegates to :meth:`handle`, which keeps
        every subclass and wrapper that only overrides ``handle``
        correct under the packed replay lane; hot caches override this
        with allocation-free logic and make ``handle`` the thin wrapper
        instead.
        """
        return self.handle(Request(t, video, b0, b1))

    def handle_span_block(self, ts, videos, b0s, b1s, c0s, c1s) -> list:
        """Handle one block of packed request columns; returns responses.

        The batched replay lanes hand caches whole same-server blocks
        (columns must be time-sorted) so hot caches can hoist loop
        invariants — attribute lookups, method binding, structure
        internals — out of the per-request path.  Overrides MUST be
        observably identical to this default: same response sequence,
        same end state, request by request.  The default simply walks
        :meth:`handle_span`, which keeps every cache correct.
        """
        return list(map(self.handle_span, ts, videos, b0s, b1s, c0s, c1s))

    def handle_span_block_kernel(self, block) -> "tuple[list, list]":
        """Vectorized-decision entry point for one packed block.

        ``block`` is a :class:`~repro.trace.columnar.BlockView` whose
        chunk columns match this cache's ``chunk_bytes``.  Returns
        ``(responses, misses)``: the per-request responses plus the
        ascending index list of every response that is not the interned
        ``SERVE_HIT`` — precomputed because kernels know which requests
        they screened, sparing the accounting layer a full scan
        (:meth:`~repro.sim.metrics.MetricsCollector.record_packed_block`
        patches exactly those indices).

        Kernel overrides classify as much of the block as possible in
        whole-column numpy passes (admission pre-screens, residency
        summaries), apply the induced mutations in batches, and walk
        only the undecided residue through the scalar per-request code.
        They MUST be observably identical to :meth:`handle_span_block`
        — same responses, same end state — and MUST fall back to it
        when ``block.vectorized`` is false or a telemetry probe is
        attached (probe hook ordering is per-request).

        This default is that fallback: the scalar block walk plus a
        miss scan.
        """
        responses = self.handle_span_block(
            block.ts_l,
            block.videos_l,
            block.b0s_l,
            block.b1s_l,
            block.c0s_l,
            block.c1s_l,
        )
        misses = [
            i for i, response in enumerate(responses) if response is not SERVE_HIT
        ]
        return responses, misses

    # -- introspection (shared by tests, examples and the CDN layer) --------

    @abstractmethod
    def __contains__(self, chunk: ChunkId) -> bool:
        """Whether ``(video, chunk_number)`` is currently on disk."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of chunks currently on disk."""

    @property
    def disk_bytes(self) -> int:
        """Disk capacity in bytes."""
        return self.disk_chunks * self.chunk_bytes

    @property
    def disk_used_fraction(self) -> float:
        """Fraction of the disk currently occupied."""
        return len(self) / self.disk_chunks

    def describe(self) -> str:
        """One-line human-readable configuration summary."""
        return (
            f"{self.name}(disk={self.disk_chunks} chunks, "
            f"chunk={self.chunk_bytes} B, "
            f"alpha_f2r={self.cost_model.alpha_f2r})"
        )
