"""Optimal Cache: the IP formulation and LP relaxation of Section 7.

The full request sequence is encoded as a binary matrix ``m[j, t]``
(chunk ``j`` appears in the ``t``-th request).  Decision variables:

* ``x[j, t]`` — chunk ``j`` is on disk at step ``t`` (``x[j, 0] = 0``);
* ``a[t]`` — request ``t`` is served (1) or redirected (0);
* ``y[j, t]`` — fill indicators linearizing the objective (Eq. 11).

subject to (Eqs. 10b–10f, 12a–12c)::

    x[j, t] >= a[t]            where m[j, t] = 1   (served => present)
    x[j, t] <= x[j, t-1]       where m[j, t] = 0   (no useless fill)
    sum_j x[j, t] <= D_c                            (disk capacity)
    y[j, t] >= x[j, t] - x[j, t-1],   0 <= y <= 1

minimizing ``sum y * C_F + sum_t (1 - a[t]) * C_R * |R_t|_c``.

One deliberate deviation from the paper's Eq. 11: the paper counts
fills as ``|x[j,t] - x[j,t-1]| / 2``, assuming a cache "initially
filled with garbage" where every fill pairs with an eviction.  From an
empty start that halves the cost of fills into free space (a first fill
flips only one bit), making fills spuriously cheap.  Since evictions
themselves cost nothing, the *positive part* ``y >= x_t - x_{t-1}``
(minimization drives ``y`` down to exactly ``max(0, Δx)``) counts fills
exactly in both regimes, which also drops half the linearization
constraints.

Solved with HiGHS via :func:`scipy.optimize.milp`: with binary
integrality this is the exact optimum; relaxing to ``[0, 1]`` gives the
LP bound of Section 9.1 — a cost *below* which no caching algorithm can
go, i.e. an upper bound on cache efficiency.  Costs here are in chunk
units (the formulation's ``|R_t|_c``), so efficiencies derived from it
are chunk-normalized; compare against chunk-normalized online metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.base import CacheResponse, Decision, VideoCache
from repro.core.costs import CostModel
from repro.trace.requests import DEFAULT_CHUNK_BYTES, ChunkId, Request

__all__ = ["OptimalCache", "OptimalSolution", "solve_optimal"]

#: Refuse to build models beyond this many variables — the paper itself
#: runs Optimal only on down-sampled data (Section 9.1).
DEFAULT_MAX_VARIABLES = 4_000_000


@dataclass
class OptimalSolution:
    """Outcome of one Optimal Cache solve."""

    relaxed: bool
    status: str
    #: Eq. 11 objective in chunk-cost units.
    objective_cost: float
    #: chunk-normalized Eq. 2 efficiency (upper bound when relaxed)
    efficiency: float
    total_requested_chunks: int
    fill_chunks: float
    redirected_chunks: float
    #: per-request serve decision; None for a relaxed (fractional) solve
    decisions: Optional[List[bool]] = None
    #: chunk -> sorted request steps at which the chunk is filled
    fills_at: Dict[ChunkId, List[int]] = field(default_factory=dict)


def solve_optimal(
    requests: Sequence[Request],
    disk_chunks: int,
    cost_model: CostModel | None = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    relaxed: bool = True,
    max_variables: int = DEFAULT_MAX_VARIABLES,
    time_limit: Optional[float] = None,
) -> OptimalSolution:
    """Build and solve the Section 7 program over ``requests``.

    ``relaxed=True`` solves the LP relaxation (the efficiency upper
    bound); ``relaxed=False`` solves the exact MILP (small scales only).
    """
    if not requests:
        raise ValueError("cannot optimize an empty request sequence")
    if disk_chunks <= 0:
        raise ValueError(f"disk_chunks must be positive, got {disk_chunks}")
    cost_model = cost_model if cost_model is not None else CostModel()

    # Index unique chunks and request membership.
    chunk_index: Dict[ChunkId, int] = {}
    request_chunks: List[List[int]] = []
    for r in requests:
        members = []
        for chunk in r.chunk_ids(chunk_bytes):
            j = chunk_index.setdefault(chunk, len(chunk_index))
            members.append(j)
        request_chunks.append(members)

    num_chunks = len(chunk_index)
    num_steps = len(requests)
    n_x = num_chunks * num_steps
    n_vars = 2 * n_x + num_steps
    if n_vars > max_variables:
        raise ValueError(
            f"model has {n_vars} variables (J={num_chunks}, T={num_steps}); "
            f"limit is {max_variables} — down-sample the trace (Section 9.1)"
        )

    cf, cr = cost_model.fill_cost, cost_model.redirect_cost

    def x_var(j: int, t: int) -> int:
        # t is 1-based; x[j, 0] is the constant 0, not a variable.
        return j * num_steps + (t - 1)

    def y_var(j: int, t: int) -> int:
        return n_x + j * num_steps + (t - 1)

    def a_var(t: int) -> int:
        return 2 * n_x + (t - 1)

    c = np.zeros(n_vars)
    c[n_x : 2 * n_x] = cf
    request_sizes = np.array([len(m) for m in request_chunks], dtype=float)
    c[2 * n_x :] = -cr * request_sizes
    objective_const = cr * float(request_sizes.sum())

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    upper: List[float] = []
    row = 0

    def add(entries: List[tuple[int, float]], ub: float) -> None:
        nonlocal row
        for col, val in entries:
            rows.append(row)
            cols.append(col)
            vals.append(val)
        upper.append(ub)
        row += 1

    member_sets = [set(m) for m in request_chunks]
    for t in range(1, num_steps + 1):
        members = member_sets[t - 1]
        for j in range(num_chunks):
            xt = x_var(j, t)
            if j in members:
                # a[t] - x[j, t] <= 0   (Eq. 10d)
                add([(a_var(t), 1.0), (xt, -1.0)], 0.0)
                # x[j, t] - x[j, t-1] <= a[t]: fills happen only on
                # served requests — Problem 2's decision (1) bundles
                # fill with serve; the paper's IP leaves this implicit
                # (cost-discouraged), making it explicit keeps the
                # replayed schedule faithful and speeds up the solve.
                if t == 1:
                    add([(xt, 1.0), (a_var(t), -1.0)], 0.0)
                else:
                    add(
                        [(xt, 1.0), (x_var(j, t - 1), -1.0), (a_var(t), -1.0)],
                        0.0,
                    )
            elif t == 1:
                # x[j, 1] <= x[j, 0] = 0   (Eq. 10e at t=1)
                add([(xt, 1.0)], 0.0)
            else:
                # x[j, t] - x[j, t-1] <= 0   (Eq. 10e)
                add([(xt, 1.0), (x_var(j, t - 1), -1.0)], 0.0)
            # y >= x[j, t] - x[j, t-1]   (Eq. 12a; the positive part
            # suffices since evictions are free — see module docstring)
            yt = y_var(j, t)
            if t == 1:
                add([(xt, 1.0), (yt, -1.0)], 0.0)
            else:
                add([(xt, 1.0), (x_var(j, t - 1), -1.0), (yt, -1.0)], 0.0)
        # sum_j x[j, t] <= D_c   (Eq. 10f)
        add([(x_var(j, t), 1.0) for j in range(num_chunks)], float(disk_chunks))

    a_matrix = sparse.csc_array(
        (vals, (rows, cols)), shape=(row, n_vars), dtype=float
    )
    constraints = LinearConstraint(a_matrix, -np.inf, np.array(upper))
    bounds = Bounds(np.zeros(n_vars), np.ones(n_vars))
    integrality = np.zeros(n_vars)
    if not relaxed:
        integrality[:n_x] = 1  # x binary
        integrality[2 * n_x :] = 1  # a binary; y follows from binary x

    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    result = milp(
        c,
        constraints=constraints,
        bounds=bounds,
        integrality=integrality,
        options=options,
    )
    if result.x is None:
        raise RuntimeError(f"optimal-cache solve failed: {result.message}")

    solution = np.asarray(result.x)
    objective = float(result.fun) + objective_const
    total_chunks = int(request_sizes.sum())
    fill_total = float(solution[n_x : 2 * n_x].sum())
    a_values = solution[2 * n_x :]
    redirected = float(((1.0 - a_values) * request_sizes).sum())
    efficiency = 1.0 - objective / total_chunks

    decisions: Optional[List[bool]] = None
    fills_at: Dict[ChunkId, List[int]] = {}
    if not relaxed:
        decisions = [bool(round(v)) for v in a_values]
        x_matrix = np.rint(solution[:n_x]).reshape(num_chunks, num_steps)
        prev = np.zeros(num_chunks)
        inv_index = {j: chunk for chunk, j in chunk_index.items()}
        for t in range(1, num_steps + 1):
            col = x_matrix[:, t - 1]
            for j in np.nonzero(col > prev)[0]:
                fills_at.setdefault(inv_index[int(j)], []).append(t)
            prev = col

    return OptimalSolution(
        relaxed=relaxed,
        status=result.message,
        objective_cost=objective,
        efficiency=efficiency,
        total_requested_chunks=total_chunks,
        fill_chunks=fill_total,
        redirected_chunks=redirected,
        decisions=decisions,
        fills_at=fills_at,
    )


class OptimalCache(VideoCache):
    """Replayable exact Optimal Cache (Problem 2 solved to optimality).

    :meth:`prepare` solves the MILP; :meth:`handle` then replays the
    precomputed schedule so the cache plugs into the same simulation
    engine as the online algorithms.  Only feasible at small scales —
    use :func:`solve_optimal` with ``relaxed=True`` for the LP bound at
    slightly larger ones.
    """

    name = "Optimal"
    offline = True

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
        max_variables: int = DEFAULT_MAX_VARIABLES,
        time_limit: Optional[float] = None,
    ) -> None:
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        self._max_variables = max_variables
        self._time_limit = time_limit
        self._solution: Optional[OptimalSolution] = None
        self._cursor = 0
        self._disk: set[ChunkId] = set()
        self._fill_schedule: Dict[int, List[ChunkId]] = {}
        self._requests: Sequence[Request] = ()

    def prepare(self, requests: Sequence[Request]) -> None:
        self._solution = solve_optimal(
            requests,
            self.disk_chunks,
            cost_model=self.cost_model,
            chunk_bytes=self.chunk_bytes,
            relaxed=False,
            max_variables=self._max_variables,
            time_limit=self._time_limit,
        )
        self._requests = requests
        self._cursor = 0
        self._disk.clear()
        self._fill_schedule = {}
        for chunk, steps in self._solution.fills_at.items():
            for t in steps:
                self._fill_schedule.setdefault(t, []).append(chunk)

    @property
    def solution(self) -> OptimalSolution:
        if self._solution is None:
            raise RuntimeError("OptimalCache not prepared")
        return self._solution

    def handle(self, request: Request) -> CacheResponse:
        if self._solution is None or self._solution.decisions is None:
            raise RuntimeError("OptimalCache.handle() before prepare()")
        if (
            self._cursor >= len(self._requests)
            or self._requests[self._cursor] != request
        ):
            raise RuntimeError(
                "requests must be replayed to OptimalCache in exactly the "
                "order given to prepare()"
            )
        step = self._cursor + 1
        self._cursor += 1

        fills = set(self._fill_schedule.get(step, ()))
        evicted = 0
        for chunk in fills:
            if len(self._disk) >= self.disk_chunks:
                # The x matrix decides what leaves; replaying it exactly
                # would mean storing the whole matrix.  The fill
                # schedule plus the capacity bound gives identical
                # ingress/redirect accounting, so drop an arbitrary
                # resident that is not being filled right now.
                victim = next(c for c in self._disk if c not in fills)
                self._disk.remove(victim)
                evicted += 1
            self._disk.add(chunk)

        if self._solution.decisions[step - 1]:
            return CacheResponse(
                Decision.SERVE, filled_chunks=len(fills), evicted_chunks=evicted
            )
        return CacheResponse(Decision.REDIRECT)

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._disk

    def __len__(self) -> int:
        return len(self._disk)
