"""The policy-kernel protocol and its two execution engines.

Adding an algorithm used to mean touching five subsystems: the object
lane (``handle``/``handle_span``), the packed lane
(``handle_span_block``), the vectorized decision kernel, a hand-written
reference oracle and the probe wiring.  A :class:`PolicyKernel`
collapses all of that into one small object with score/admit/evict
hooks; the two engines here turn any conforming policy into

* :class:`KernelCache` — the production cache: a
  :class:`~repro.structures.scoreheap.ScoreHeap`-backed
  :class:`~repro.core.base.VideoCache` with a hoisted block walk, a
  generic numpy redirect pre-screen, and probe hooks;
* :class:`OracleKernelCache` — the auto-derived reference oracle: the
  *same* policy on a plain dict with linear min-scans, in the exact
  idiom of :mod:`repro.verify.oracles`.

Both engines drive the policy through one fixed pipeline per request
(mirroring :class:`~repro.core.baselines.LfuAdmissionCache`, the ported
proof that the pipeline is expressive enough to be byte-identical to a
hand-written cache):

1. ``on_request`` — per-request bookkeeping (counters, aging);
2. chunk walk — resident chunks may be re-scored via ``rescore_hit``,
   missing ones are collected;
3. oversized check — spans larger than the disk redirect;
4. ``admit`` — a redirect-reason string rejects the request;
5. eviction — the lowest ``(score, seq)`` chunks outside the span make
   room, each reported through ``on_evict``;
6. fill — every missing chunk is inserted at ``fill_score``.

Because both engines issue identical sequences of insert/evict
operations and both order eviction by ascending ``(score, insertion
sequence)``, a policy verified by the differential harness is exact on
every lane the engines provide.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core import kernels
from repro.core.base import (
    REDIRECT,
    SERVE_HIT,
    CacheResponse,
    VideoCache,
    serve_response,
)
from repro.core.costs import CostModel
from repro.structures.scoreheap import ScoreHeap
from repro.trace.requests import DEFAULT_CHUNK_BYTES, ChunkId, Request

__all__ = ["PolicyKernel", "KernelCache", "OracleKernelCache"]


class PolicyKernel:
    """One caching policy expressed as score/admit/evict hooks.

    Subclasses override the hooks they need; the defaults make the
    trivial policy (always admit, never re-score, fill at ``t``) —
    i.e. pull-through LRU.  Contract notes the engines rely on:

    * ``on_request`` runs exactly once per request, *before* the chunk
      walk, and is the only hook allowed to mutate admission state —
      ``admit`` itself MUST be side-effect-free (the vectorized lane
      skips it for pre-screened redirects);
    * ``rescore_hit``/``fill_score`` return the chunk's new eviction
      score; lower scores evict first, ties break by insertion order.
      ``rescore_hit`` may return None to leave the chunk's key alone;
    * policies reach their engine through :attr:`cache` (set by
      :meth:`bind`): ``cache.rekey(chunk, score)`` re-keys a resident
      chunk (aging passes), ``cache.min_score()`` reads the current
      eviction frontier, ``cache.resident(chunk)`` probes residency;
    * ``screen`` may classify whole packed blocks of *guaranteed
      redirects* from block-start snapshots; the engine additionally
      requires first-in-block occurrence and zero span residency
      before trusting the mask, so a screened request reduces to
      ``on_request`` plus the interned REDIRECT;
    * ``state_dict``/``load_state`` serialize policy state (JSON-able;
      the engine persists the cached set itself); ``load_state`` must
      reject snapshots whose immutable knobs mismatch the live policy.
    """

    #: snapshot kind slug; the registry persists caches as ``policy:<kind>``
    kind: str = "abstract"
    #: algorithm name shown in reports and registries
    name: str = "abstract-policy"
    #: forwarded to the engine (False enables alpha-collapsing sweeps)
    cost_sensitive: bool = False

    def __init__(self) -> None:
        self.cache: Optional[VideoCache] = None

    def bind(self, cache: VideoCache) -> None:
        """Attach the engine back-reference (called by the engines)."""
        self.cache = cache

    # -- decision hooks ------------------------------------------------------

    def on_request(self, t: float, video: int, c0: int, c1: int) -> None:
        """Per-request bookkeeping, before anything else."""

    def rescore_hit(self, t: float, video: int, c: int) -> Optional[float]:
        """New score for a resident chunk being requested (None = keep)."""
        return t

    def admit(
        self, t: float, video: int, c0: int, c1: int, num_missing: int
    ) -> Optional[str]:
        """Redirect-reason string to reject the request, None to serve."""
        return None

    def fill_score(self, t: float, video: int, c: int) -> float:
        """Insertion score for a chunk being cache-filled."""
        return t

    def on_evict(self, chunk: ChunkId) -> None:
        """One chunk chosen as an eviction victim (drop side state)."""

    # -- optional vectorized pre-screen --------------------------------------

    def screen(self, block, uniq, inv, counts, first_occurrence):
        """Numpy bool mask of provable redirects, or None for no screen.

        Computed from block-start snapshots; ``uniq``/``inv`` come from
        ``block.video_groups()``/``block.video_inverse()`` and
        ``counts`` holds per-request span residency.  The engine ANDs
        the mask with ``first_occurrence & (counts == 0)``, so the
        policy only has to prove that ``admit`` would reject given its
        snapshot state plus this request's own ``on_request`` bump.
        """
        return None

    # -- observability / persistence -----------------------------------------

    def gauges(self) -> dict:
        """Cheap numeric gauges for telemetry snapshots."""
        return {}

    def state_dict(self) -> dict:
        """JSON-able policy state (excluding the cached set)."""
        return {}

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output; reject config mismatches."""


class KernelCache(VideoCache):
    """Production engine: any :class:`PolicyKernel` as a full cache.

    Provides every lane the hand-written caches have — object
    ``handle``/``handle_span``, the hoisted ``handle_span_block`` walk,
    and a generic ``handle_span_block_kernel`` built on the policy's
    redirect ``screen`` — plus probe hooks and snapshot support (via
    :mod:`repro.core.snapshot`, kind ``policy:<policy.kind>``).
    """

    def __init__(
        self,
        policy: PolicyKernel,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
    ) -> None:
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        self.policy = policy
        self.name = policy.name
        self.cost_sensitive = policy.cost_sensitive
        self._cached: ScoreHeap[ChunkId] = ScoreHeap(seed=0)
        policy.bind(self)

    # -- engine services for the bound policy --------------------------------

    def resident(self, chunk: ChunkId) -> bool:
        return chunk in self._cached

    def rekey(self, chunk: ChunkId, score: float) -> None:
        """Re-key a chunk iff resident (aging passes use this)."""
        if chunk in self._cached:
            self._cached.insert(chunk, score)

    def min_score(self) -> Optional[float]:
        """Score of the current eviction frontier (None when empty)."""
        if not len(self._cached):
            return None
        return self._cached.min_item()[1]

    # -- VideoCache interface ------------------------------------------------

    def handle(self, request: Request) -> CacheResponse:
        k = self.chunk_bytes
        return self.handle_span(
            request.t,
            request.video,
            request.b0,
            request.b1,
            request.b0 // k,
            request.b1 // k,
        )

    def handle_span(
        self, t: float, video: int, b0: int, b1: int, c0: int, c1: int
    ) -> CacheResponse:
        policy = self.policy
        probe = self.probe
        policy.on_request(t, video, c0, c1)
        cached = self._cached
        missing: List[ChunkId] = []
        for c in range(c0, c1 + 1):
            chunk = (video, c)
            if chunk in cached:
                score = policy.rescore_hit(t, video, c)
                if score is not None:
                    cached.insert(chunk, score)
            else:
                missing.append(chunk)
        if c1 - c0 + 1 > self.disk_chunks:
            if probe is not None:
                probe.on_redirect(t, "oversized")
            return REDIRECT
        reason = policy.admit(t, video, c0, c1, len(missing))
        if reason is not None:
            if probe is not None:
                probe.on_redirect(t, reason)
            return REDIRECT
        if not missing:
            if probe is not None:
                probe.on_serve(t, 0, 0)
            return SERVE_HIT
        evicted = 0
        need = len(missing) - (self.disk_chunks - len(cached))
        if need > 0:
            exclude = {(video, c) for c in range(c0, c1 + 1)}
            for chunk, _score in cached.pop_n_smallest(need, exclude=exclude):
                policy.on_evict(chunk)
                if probe is not None:
                    # scores are policy-defined (not timestamps), so no
                    # eviction age is claimed; residence still tracks
                    probe.on_evict(t, chunk, float("nan"))
                evicted += 1
        for chunk in missing:
            cached.insert(chunk, policy.fill_score(t, chunk[0], chunk[1]))
            if probe is not None:
                probe.on_fill(t, chunk)
        if probe is not None:
            probe.on_serve(t, len(missing), evicted)
        return serve_response(len(missing), evicted)

    def handle_span_block(self, ts, videos, b0s, b1s, c0s, c1s) -> list:
        # Hoisted block walk: policy hooks, heap internals and the disk
        # size bound once per block.  Observably identical to
        # handle_span element-wise (same hook order, same insert/evict
        # sequence); with a probe attached the element-wise walk runs
        # instead so probe hook ordering is trivially preserved.
        if self.probe is not None:
            return list(map(self.handle_span, ts, videos, b0s, b1s, c0s, c1s))
        policy = self.policy
        on_request = policy.on_request
        rescore = policy.rescore_hit
        admit = policy.admit
        fill_score = policy.fill_score
        on_evict = policy.on_evict
        disk_chunks = self.disk_chunks
        cached = self._cached
        insert = cached.insert
        index = cached.raw_index()
        responses: list = []
        append = responses.append
        for t, video, c0, c1 in zip(ts, videos, c0s, c1s):
            on_request(t, video, c0, c1)
            missing = None
            for c in range(c0, c1 + 1):
                chunk = (video, c)
                if chunk in index:
                    score = rescore(t, video, c)
                    if score is not None:
                        insert(chunk, score)
                elif missing is None:
                    missing = [chunk]
                else:
                    missing.append(chunk)
            if c1 - c0 + 1 > disk_chunks:
                append(REDIRECT)
                continue
            n_missing = 0 if missing is None else len(missing)
            if admit(t, video, c0, c1, n_missing) is not None:
                append(REDIRECT)
                continue
            if missing is None:
                append(SERVE_HIT)
                continue
            evicted = 0
            need = n_missing - (disk_chunks - len(index))
            if need > 0:
                exclude = {(video, c) for c in range(c0, c1 + 1)}
                for chunk, _score in cached.pop_n_smallest(need, exclude=exclude):
                    on_evict(chunk)
                    evicted += 1
            for chunk in missing:
                insert(chunk, fill_score(t, chunk[0], chunk[1]))
            append(serve_response(n_missing, evicted))
        return responses

    def handle_span_block_kernel(self, block) -> "tuple[list, list]":
        """Generic redirect pre-screen over one packed block.

        The engine snapshots span residency at block start and asks the
        policy for its provable-redirect mask; a screened request is
        sound when additionally it is its video's first in-block
        occurrence (no earlier in-block request changed this video's
        admission state or residency) and none of its span is resident
        (so skipping the chunk walk mutates nothing).  Screened
        requests reduce to ``on_request`` plus the interned REDIRECT;
        everything else walks the scalar hoisted path.  Falls back to
        the scalar block walk when the policy has no screen, the block
        is not vectorized, or a probe is attached.
        """
        if self.probe is not None or not block.vectorized:
            return VideoCache.handle_span_block_kernel(self, block)
        policy = self.policy
        cached = self._cached
        index = cached.raw_index()
        uniq, _order, _starts = block.video_groups()
        arrays = kernels.residency_arrays(uniq, kernels.chunks_by_video(index))
        counts = kernels.span_resident_counts(block, arrays)
        inv = block.video_inverse()
        first = block.first_occurrence()
        mask = policy.screen(block, uniq, inv, counts, first)
        if mask is None:
            return VideoCache.handle_span_block_kernel(self, block)
        screen = (mask & first & (counts == 0)).tolist()

        on_request = policy.on_request
        rescore = policy.rescore_hit
        admit = policy.admit
        fill_score = policy.fill_score
        on_evict = policy.on_evict
        disk_chunks = self.disk_chunks
        insert = cached.insert
        responses: list = []
        append = responses.append
        misses: list = []
        miss = misses.append
        i = -1
        for t, video, c0, c1, scr in zip(
            block.ts_l, block.videos_l, block.c0s_l, block.c1s_l, screen
        ):
            i += 1
            on_request(t, video, c0, c1)
            if scr:
                append(REDIRECT)
                miss(i)
                continue
            missing = None
            for c in range(c0, c1 + 1):
                chunk = (video, c)
                if chunk in index:
                    score = rescore(t, video, c)
                    if score is not None:
                        insert(chunk, score)
                elif missing is None:
                    missing = [chunk]
                else:
                    missing.append(chunk)
            if c1 - c0 + 1 > disk_chunks:
                append(REDIRECT)
                miss(i)
                continue
            n_missing = 0 if missing is None else len(missing)
            if admit(t, video, c0, c1, n_missing) is not None:
                append(REDIRECT)
                miss(i)
                continue
            if missing is None:
                append(SERVE_HIT)
                continue
            evicted = 0
            need = n_missing - (disk_chunks - len(index))
            if need > 0:
                exclude = {(video, c) for c in range(c0, c1 + 1)}
                for chunk, _score in cached.pop_n_smallest(need, exclude=exclude):
                    on_evict(chunk)
                    evicted += 1
            for chunk in missing:
                insert(chunk, fill_score(t, chunk[0], chunk[1]))
            append(serve_response(n_missing, evicted))
            miss(i)
        return responses, misses

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._cached

    def __len__(self) -> int:
        return len(self._cached)


def _n_least(
    scored: List[Tuple[Tuple, ChunkId]], n: int, exclude: Set[ChunkId]
) -> List[ChunkId]:
    """The ``n`` least chunks by ascending ``(score, seq)``, skipping
    ``exclude`` — the transparent sort-and-take of the oracle idiom."""
    if n <= 0:
        return []
    out = []
    for _key, chunk in sorted(scored):
        if chunk in exclude:
            continue
        out.append(chunk)
        if len(out) == n:
            break
    return out


class OracleKernelCache(VideoCache):
    """Reference engine: the same policy on plain dicts and linear scans.

    No :class:`~repro.structures.scoreheap.ScoreHeap` — eviction picks
    the minimum ``(score, insertion sequence)`` with a sort over the
    whole cached set, exactly like the hand-written oracles in
    :mod:`repro.verify.oracles`.  The differential harness replays this
    against :class:`KernelCache` to pin the engine's heap and batched
    walks to the transparent semantics.
    """

    def __init__(
        self,
        policy: PolicyKernel,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
    ) -> None:
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        self.policy = policy
        self.name = "oracle:" + policy.name
        self.cost_sensitive = policy.cost_sensitive
        #: chunk -> (score, insertion sequence)
        self._cached: Dict[ChunkId, Tuple[float, int]] = {}
        self._seq = 0
        policy.bind(self)

    # -- engine services for the bound policy --------------------------------

    def resident(self, chunk: ChunkId) -> bool:
        return chunk in self._cached

    def rekey(self, chunk: ChunkId, score: float) -> None:
        if chunk in self._cached:
            self._insert(chunk, score)

    def min_score(self) -> Optional[float]:
        if not self._cached:
            return None
        return min(key[0] for key in self._cached.values())

    def _insert(self, chunk: ChunkId, score: float) -> None:
        self._seq += 1
        self._cached[chunk] = (score, self._seq)

    # -- VideoCache interface ------------------------------------------------

    def handle(self, request: Request) -> CacheResponse:
        t = request.t
        video = request.video
        policy = self.policy
        chunks = list(request.chunk_ids(self.chunk_bytes))
        c0 = chunks[0][1]
        c1 = chunks[-1][1]
        policy.on_request(t, video, c0, c1)
        missing = []
        for chunk in chunks:
            if chunk in self._cached:
                score = policy.rescore_hit(t, video, chunk[1])
                if score is not None:
                    self._insert(chunk, score)
            else:
                missing.append(chunk)
        if len(chunks) > self.disk_chunks:
            return REDIRECT
        if policy.admit(t, video, c0, c1, len(missing)) is not None:
            return REDIRECT
        if not missing:
            return SERVE_HIT
        evicted = 0
        need = len(missing) - (self.disk_chunks - len(self._cached))
        if need > 0:
            scored = [(key, chunk) for chunk, key in self._cached.items()]
            for chunk in _n_least(scored, need, set(chunks)):
                del self._cached[chunk]
                policy.on_evict(chunk)
                evicted += 1
        for chunk in missing:
            self._insert(chunk, policy.fill_score(t, chunk[0], chunk[1]))
        return serve_response(len(missing), evicted)

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._cached

    def __len__(self) -> int:
        return len(self._cached)
