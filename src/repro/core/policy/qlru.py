"""Tunable / generalized LRU (Friedlander & Aggarwal, arXiv:1806.10853).

Plain LRU inserts a filled chunk at the most-recent end of the queue —
a new object immediately outranks everything resident, which is exactly
why fetch-on-miss LRU collapses under one-hit-wonder traffic.  The
generalized family parameterizes the *insertion position*: a fill
enters a fraction ``q`` of the way up the queue, so it must survive the
``(1-q)`` tail below it (proving itself against re-referenced content)
before it can displace the working set.  ``q = 1`` recovers plain LRU;
small ``q`` approximates FIFO-with-promotion.

On the score axis the queue is the ``(score, seq)`` order, spanning
``[min_score, t]``; the insertion position interpolates::

    fill_score = q * t + (1 - q) * min_score

Hits are always promoted to the top (``t``), like LRU.  Within one
request's fill batch the frontier reading is stable (every fill lands
at or above the pre-fill minimum and evictions happen first), so the
per-fill ``min_score()`` probe is deterministic across the object,
packed and oracle engines.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policy.kernel import PolicyKernel
from repro.trace.requests import ChunkId

__all__ = ["TunableLruPolicy"]


class TunableLruPolicy(PolicyKernel):
    """LRU with a tunable insertion position ``q`` in ``(0, 1]``."""

    kind = "qlru"
    name = "qLRU"
    cost_sensitive = False

    def __init__(self, q: float = 0.5) -> None:
        super().__init__()
        if not (0.0 < q <= 1.0):
            raise ValueError(f"q must be in (0, 1], got {q}")
        self.q = q

    def rescore_hit(self, t: float, video: int, c: int) -> Optional[float]:
        return t

    def fill_score(self, t: float, video: int, c: int) -> float:
        base = self.cache.min_score()
        if base is None:
            base = t
        return self.q * t + (1.0 - self.q) * base

    def on_evict(self, chunk: ChunkId) -> None:
        pass

    def gauges(self) -> dict:
        return {"q": self.q}

    def state_dict(self) -> dict:
        return {"q": self.q}

    def load_state(self, state: dict) -> None:
        if state["q"] != self.q:
            raise ValueError(f"snapshot q={state['q']} != live {self.q}")
