"""Pluggable policy kernels: one file per policy, every lane for free.

``repro.core.policy`` turns algorithm work from five-subsystem surgery
(object lane, packed lane, vectorized kernels, oracles, probes) into a
single-file plugin: subclass
:class:`~repro.core.policy.kernel.PolicyKernel`, register a
:class:`~repro.core.policy.registry.PolicySpec`, and the registry wires
the policy into ``CACHE_FACTORIES``, ``ORACLE_FACTORIES``,
``KERNEL_ALGORITHMS``, ``SNAPSHOT_KINDS``, the fuzz matrix and the CI
``policy-matrix`` job.  See DESIGN.md §15 for the porting recipe.

Built-in policies:

* ``LFU-PK`` — the LFU baseline ported byte-identically (its oracle is
  the hand-written :class:`~repro.core.baselines.LfuAdmissionCache`);
* ``Retention`` — retention-aware chunk caching (arXiv:1512.03274);
* ``qLRU`` — tunable insertion-position LRU (arXiv:1806.10853).
"""

from repro.core.baselines import LfuAdmissionCache
from repro.core.policy.kernel import KernelCache, OracleKernelCache, PolicyKernel
from repro.core.policy.lfu_port import LfuKernelPolicy
from repro.core.policy.qlru import TunableLruPolicy
from repro.core.policy.registry import (
    POLICY_REGISTRY,
    PolicySpec,
    cache_factories,
    kernel_algorithm_names,
    oracle_factories,
    policy_for,
    register_policy,
    snapshot_kinds,
)
from repro.core.policy.retention import RetentionAwarePolicy

__all__ = [
    "PolicyKernel",
    "KernelCache",
    "OracleKernelCache",
    "PolicySpec",
    "POLICY_REGISTRY",
    "register_policy",
    "policy_for",
    "cache_factories",
    "oracle_factories",
    "kernel_algorithm_names",
    "snapshot_kinds",
    "LfuKernelPolicy",
    "RetentionAwarePolicy",
    "TunableLruPolicy",
]

# The LFU port is differentially verified against the hand-written
# production cache itself — the strongest byte-identity pin available.
register_policy(
    PolicySpec(name="LFU-PK", kind="lfu", policy_cls=LfuKernelPolicy,
               oracle=LfuAdmissionCache)
)
register_policy(
    PolicySpec(name="Retention", kind="retention", policy_cls=RetentionAwarePolicy)
)
register_policy(PolicySpec(name="qLRU", kind="qlru", policy_cls=TunableLruPolicy))
