"""Retention-aware chunk caching (Maggi et al., arXiv:1512.03274).

Audience-retention measurements show most viewers abandon a video early
— the session generator models exactly this skew (an 80/20
full-watch/abandon split with a Beta(0.7, 2.2) abandonment point), so
deep chunks are requested far less often than early ones.  A
position-blind policy spends disk on chunks users never reach; the
retention-aware policy keeps the chunks audiences actually reach by
folding the within-video position into the eviction score::

    score(t, c) = t + boost * 2^(-c / halflife)

i.e. recency, future-dated by a bonus that halves every ``halflife``
chunk positions.  Early chunks (high expected audience) outlive the
plain-LRU horizon; deep chunks (low expected audience) become the
eviction frontier first.  Admission follows the LFU baseline's
hit-count rule (a video must prove ``min_video_hits`` requests) so
one-off videos never pollute the disk, but needs no aging: the score
decay already bounds a stale video's tenure.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.core import kernels
from repro.core.policy.kernel import PolicyKernel
from repro.trace.requests import ChunkId

__all__ = ["RetentionAwarePolicy"]


class RetentionAwarePolicy(PolicyKernel):
    """Recency eviction with an early-segment retention boost."""

    kind = "retention"
    name = "Retention"
    cost_sensitive = False

    def __init__(
        self,
        min_video_hits: int = 2,
        boost: float = 3600.0,
        halflife: float = 8.0,
    ) -> None:
        super().__init__()
        if min_video_hits < 1:
            raise ValueError(f"min_video_hits must be >= 1, got {min_video_hits}")
        if boost < 0.0:
            raise ValueError(f"boost must be >= 0, got {boost}")
        if halflife <= 0.0:
            raise ValueError(f"halflife must be > 0, got {halflife}")
        self.min_video_hits = min_video_hits
        self.boost = boost
        self.halflife = halflife
        self._video_hits: Counter = Counter()

    def _score(self, t: float, c: int) -> float:
        return t + self.boost * 2.0 ** (-(c / self.halflife))

    def on_request(self, t: float, video: int, c0: int, c1: int) -> None:
        self._video_hits[video] += 1

    def rescore_hit(self, t: float, video: int, c: int) -> Optional[float]:
        return self._score(t, c)

    def admit(
        self, t: float, video: int, c0: int, c1: int, num_missing: int
    ) -> Optional[str]:
        if self._video_hits[video] < self.min_video_hits:
            return "unproven-video"
        return None

    def fill_score(self, t: float, video: int, c: int) -> float:
        return self._score(t, c)

    def on_evict(self, chunk: ChunkId) -> None:
        pass

    def screen(self, block, uniq, inv, counts, first_occurrence):
        """Unproven-video redirects from block-start hit counts.

        Exact (not merely conservative) under the engine's
        first-occurrence guard: hit counts only grow and never decay, so
        a first-occurrence request's live count is precisely
        ``snapshot + 1``.
        """
        snap_hits = kernels.snapshot_counts(uniq, self._video_hits)
        return snap_hits[inv] + 1 < self.min_video_hits

    def gauges(self) -> dict:
        return {"tracked_videos": len(self._video_hits)}

    def state_dict(self) -> dict:
        return {
            "min_video_hits": self.min_video_hits,
            "boost": self.boost,
            "halflife": self.halflife,
            "video_hits": [[v, n] for v, n in self._video_hits.items()],
        }

    def load_state(self, state: dict) -> None:
        for knob in ("min_video_hits", "boost", "halflife"):
            if state[knob] != getattr(self, knob):
                raise ValueError(
                    f"snapshot {knob}={state[knob]} != live {getattr(self, knob)}"
                )
        self._video_hits = Counter({int(v): int(n) for v, n in state["video_hits"]})
