"""One registry, every lane.

Registering a :class:`~repro.core.policy.kernel.PolicyKernel` here is
the *entire* integration surface for a new algorithm.  The registry
manufactures:

* a cache factory (``cache_factories()``) merged into
  :data:`repro.sim.runner.CACHE_FACTORIES` — object lane, packed lane
  and the vectorized kernel lane all come from
  :class:`~repro.core.policy.kernel.KernelCache`;
* a reference-oracle factory (``oracle_factories()``) merged into
  :data:`repro.verify.oracles.ORACLE_FACTORIES` — either an explicit
  hand-written oracle (the LFU port pins itself against the production
  :class:`~repro.core.baselines.LfuAdmissionCache`) or the auto-derived
  :class:`~repro.core.policy.kernel.OracleKernelCache`;
* kernel-lane names (``kernel_algorithm_names()``) merged into
  :data:`repro.verify.differential.KERNEL_ALGORITHMS` so the
  kernels-on/off equivalence matrix covers every policy;
* snapshot kinds (``snapshot_kinds()``) merged into
  :data:`repro.core.snapshot.SNAPSHOT_KINDS` as ``policy:<kind>``.

Downstream consumers (fuzz matrix, ``repro-verify --policies``, the CI
``policy-matrix`` job, the snapshot property test) iterate the registry,
so a new policy plugin is covered with zero edits outside its one file
plus a :func:`register_policy` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Type

from repro.core.costs import CostModel
from repro.core.policy.kernel import KernelCache, OracleKernelCache, PolicyKernel
from repro.trace.requests import DEFAULT_CHUNK_BYTES

__all__ = [
    "PolicySpec",
    "POLICY_REGISTRY",
    "register_policy",
    "policy_for",
    "cache_factories",
    "oracle_factories",
    "kernel_algorithm_names",
    "snapshot_kinds",
]


@dataclass(frozen=True)
class PolicySpec:
    """One registered policy: its class plus verification wiring."""

    #: algorithm name (key in CACHE_FACTORIES / ORACLE_FACTORIES)
    name: str
    #: snapshot kind slug (persisted as ``policy:<kind>``)
    kind: str
    policy_cls: Type[PolicyKernel]
    #: hand-written oracle factory with the ``build_oracle`` calling
    #: convention; None derives an OracleKernelCache automatically
    oracle: Optional[Callable] = None


#: name -> spec for every registered policy
POLICY_REGISTRY: Dict[str, PolicySpec] = {}
_KINDS: Dict[str, str] = {}  # kind -> name, for collision checks


def register_policy(spec: PolicySpec) -> PolicySpec:
    """Register a policy, rejecting name/kind collisions."""
    if spec.name in POLICY_REGISTRY:
        raise ValueError(f"policy name {spec.name!r} already registered")
    if spec.kind in _KINDS:
        raise ValueError(
            f"policy kind {spec.kind!r} already registered by {_KINDS[spec.kind]!r}"
        )
    if spec.policy_cls.name != spec.name or spec.policy_cls.kind != spec.kind:
        raise ValueError(
            f"spec ({spec.name!r}, {spec.kind!r}) disagrees with policy class "
            f"attrs ({spec.policy_cls.name!r}, {spec.policy_cls.kind!r})"
        )
    POLICY_REGISTRY[spec.name] = spec
    _KINDS[spec.kind] = spec.name
    return spec


def policy_for(name: str, **kwargs) -> PolicyKernel:
    """Instantiate a fresh policy object for a registered name."""
    return POLICY_REGISTRY[name].policy_cls(**kwargs)


class _PolicyCacheFactory:
    """Callable factory with the CACHE_FACTORIES attribute contract
    (``offline``/``cost_sensitive`` are read off factory *values* by the
    scheduler and the equivalence suite)."""

    offline = False

    def __init__(self, spec: PolicySpec) -> None:
        self.spec = spec
        self.cost_sensitive = spec.policy_cls.cost_sensitive
        self.__name__ = f"policy:{spec.name}"

    def __call__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
        **kwargs,
    ) -> KernelCache:
        return KernelCache(
            self.spec.policy_cls(**kwargs),
            disk_chunks,
            chunk_bytes=chunk_bytes,
            cost_model=cost_model,
        )


class _PolicyOracleFactory:
    """Auto-derived oracle factory (``build_oracle`` calling convention)."""

    cost_sensitive = False

    def __init__(self, spec: PolicySpec) -> None:
        self.spec = spec
        self.cost_sensitive = spec.policy_cls.cost_sensitive
        self.__name__ = f"oracle:{spec.name}"

    def __call__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
        **kwargs,
    ) -> OracleKernelCache:
        return OracleKernelCache(
            self.spec.policy_cls(**kwargs),
            disk_chunks,
            chunk_bytes=chunk_bytes,
            cost_model=cost_model,
        )


class _ExplicitOracleFactory:
    """Wrap a hand-written oracle class, renaming its instances to the
    ``oracle:<policy name>`` convention the oracle test suite pins."""

    cost_sensitive = False

    def __init__(self, spec: PolicySpec) -> None:
        self.spec = spec
        self.cost_sensitive = spec.policy_cls.cost_sensitive
        self.__name__ = f"oracle:{spec.name}"

    def __call__(self, *args, **kwargs):
        oracle = self.spec.oracle(*args, **kwargs)
        oracle.name = f"oracle:{self.spec.name}"
        return oracle


def cache_factories() -> Dict[str, Callable]:
    """name -> KernelCache factory for every registered policy."""
    return {name: _PolicyCacheFactory(spec) for name, spec in POLICY_REGISTRY.items()}


def oracle_factories() -> Dict[str, Callable]:
    """name -> oracle factory (explicit oracle or auto-derived)."""
    return {
        name: (
            _ExplicitOracleFactory(spec)
            if spec.oracle is not None
            else _PolicyOracleFactory(spec)
        )
        for name, spec in POLICY_REGISTRY.items()
    }


def kernel_algorithm_names() -> tuple:
    """Policy names for the kernel-lane equivalence matrix.

    Every KernelCache overrides ``handle_span_block_kernel`` at class
    level (screen-less policies fall back to the scalar block walk
    inside it), so all registered policies belong on the matrix.
    """
    return tuple(sorted(POLICY_REGISTRY))


def snapshot_kinds() -> Dict[str, type]:
    """``policy:<kind>`` -> KernelCache, for SNAPSHOT_KINDS."""
    return {f"policy:{spec.kind}": KernelCache for spec in POLICY_REGISTRY.values()}
