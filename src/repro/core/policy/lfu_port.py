"""The LFU baseline ported onto the policy-kernel protocol.

This is the proof obligation for the protocol: the exact admission,
aging, scoring and eviction semantics of
:class:`~repro.core.baselines.LfuAdmissionCache` expressed as a
:class:`~repro.core.policy.kernel.PolicyKernel`.  The registry pins the
port against the hand-written cache itself (it serves as the
differential oracle for ``LFU-PK``), so the fuzz matrix enforces
byte-identity on the object lane, the packed lane, and the vectorized
kernel lane — if the adapter pipeline drifted from the hand-written
pipeline in any observable way, ``repro-verify`` would shrink a
counterexample.

Kept distinct from the stock ``LFU`` registry entry (same semantics,
different engine) so both implementations stay in the matrices and keep
checking each other.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from repro.core import kernels
from repro.core.policy.kernel import PolicyKernel
from repro.trace.requests import ChunkId

__all__ = ["LfuKernelPolicy"]


class LfuKernelPolicy(PolicyKernel):
    """LFU replacement, hit-count admission, periodic aging — the
    :class:`~repro.core.baselines.LfuAdmissionCache` semantics."""

    kind = "lfu"
    name = "LFU-PK"
    cost_sensitive = False

    def __init__(self, min_video_hits: int = 2, aging_interval: int = 10_000) -> None:
        super().__init__()
        if min_video_hits < 1:
            raise ValueError(f"min_video_hits must be >= 1, got {min_video_hits}")
        if aging_interval < 1:
            raise ValueError(f"aging_interval must be >= 1, got {aging_interval}")
        self.min_video_hits = min_video_hits
        self.aging_interval = aging_interval
        self._video_hits: Counter = Counter()
        self._freq: Dict[ChunkId, float] = {}
        self._handled = 0

    def on_request(self, t: float, video: int, c0: int, c1: int) -> None:
        self._handled += 1
        if self._handled % self.aging_interval == 0:
            self._age()
        self._video_hits[video] += 1

    def rescore_hit(self, t: float, video: int, c: int) -> Optional[float]:
        chunk = (video, c)
        score = self._freq.get(chunk, 0.0) + 1.0
        self._freq[chunk] = score
        return score

    def admit(
        self, t: float, video: int, c0: int, c1: int, num_missing: int
    ) -> Optional[str]:
        if self._video_hits[video] < self.min_video_hits:
            return "unproven-video"
        return None

    def fill_score(self, t: float, video: int, c: int) -> float:
        chunk = (video, c)
        score = self._freq.get(chunk, 0.0) + 1.0
        self._freq[chunk] = score
        return score

    def on_evict(self, chunk: ChunkId) -> None:
        self._freq.pop(chunk, None)

    def _age(self) -> None:
        """Halve all frequencies and re-key the cached set (in ``_freq``
        admission order, consuming one heap sequence number per resident
        chunk — exactly like the hand-written aging pass)."""
        for chunk in list(self._freq):
            self._freq[chunk] /= 2.0
            self.cache.rekey(chunk, self._freq[chunk])
        for video in list(self._video_hits):
            self._video_hits[video] //= 2
            if self._video_hits[video] == 0:
                del self._video_hits[video]

    def screen(self, block, uniq, inv, counts, first_occurrence):
        """Unproven-video redirects, from the block-start hit counts.

        Sound under the engine's ``first_occurrence & counts == 0``
        guard: a first-occurrence video's live count after its own
        ``on_request`` bump is at most ``snapshot + 1`` (aging can only
        lower it), so ``snapshot + 1 < min_video_hits`` proves the live
        admission test fails.
        """
        snap_hits = kernels.snapshot_counts(uniq, self._video_hits)
        return snap_hits[inv] + 1 < self.min_video_hits

    def gauges(self) -> dict:
        return {
            "tracked_videos": len(self._video_hits),
            "tracked_frequencies": len(self._freq),
            "handled": self._handled,
        }

    def state_dict(self) -> dict:
        return {
            "min_video_hits": self.min_video_hits,
            "aging_interval": self.aging_interval,
            "handled": self._handled,
            "video_hits": [[v, n] for v, n in self._video_hits.items()],
            "freq": [[v, c, f] for (v, c), f in self._freq.items()],
        }

    def load_state(self, state: dict) -> None:
        for knob in ("min_video_hits", "aging_interval"):
            if state[knob] != getattr(self, knob):
                raise ValueError(
                    f"snapshot {knob}={state[knob]} != live {getattr(self, knob)}"
                )
        self._handled = int(state["handled"])
        self._video_hits = Counter({int(v): int(n) for v, n in state["video_hits"]})
        self._freq = {(int(v), int(c)): float(f) for v, c, f in state["freq"]}
