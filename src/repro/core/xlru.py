"""xLRU Cache: the LRU-based baseline of Section 5.

Two recency structures cooperate:

* a **video popularity tracker** mapping video IDs to their last access
  time — the admission filter: a video qualifies for serving only if it
  was seen before *and* recently enough relative to the disk's cache
  age (LRU-2-like: the first request for a video is always redirected);
* a **disk cache** of fixed-size chunks under plain LRU replacement.

The admission test generalizes to any fill-to-redirect preference
``alpha_F2R`` (Eq. 5): redirect iff ::

    (t_now - t_last) * alpha_F2R > CacheAge()

i.e. with fills twice as costly as redirects (alpha = 2), a video must
be requested with a period at most *half* the cache age to be admitted.

The warm-up case the paper's pseudocode elides ("disk not full") is
handled by treating a non-full disk as having unbounded cache age: any
previously seen video is admitted while free space remains, and nothing
is evicted until the disk is full.
"""

from __future__ import annotations

from repro.core import kernels
from repro.core.base import REDIRECT, SERVE_HIT, CacheResponse, VideoCache, serve_response
from repro.core.costs import CostModel
from repro.structures.lru import AccessRecencyList
from repro.trace.requests import DEFAULT_CHUNK_BYTES, ChunkId, Request

__all__ = ["XlruCache"]


class XlruCache(VideoCache):
    """Video cache with LRU popularity tracking and replacement (§5)."""

    name = "xLRU"

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
        tracker_cleanup_interval: int = 1024,
    ) -> None:
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        self._tracker: AccessRecencyList[int] = AccessRecencyList()
        self._disk: AccessRecencyList[ChunkId] = AccessRecencyList()
        self._cleanup_interval = tracker_cleanup_interval
        self._requests_since_cleanup = 0

    # -- VideoCache interface ------------------------------------------------

    def handle(self, request: Request) -> CacheResponse:
        k = self.chunk_bytes
        return self.handle_span(
            request.t,
            request.video,
            request.b0,
            request.b1,
            request.b0 // k,
            request.b1 // k,
        )

    def handle_span(
        self, t: float, video: int, b0: int, b1: int, c0: int, c1: int
    ) -> CacheResponse:
        probe = self.probe
        last = self._tracker.last_access(video)
        self._tracker.touch(video, t)
        self._maybe_cleanup_tracker(t)

        if last is None:
            if probe is not None:
                probe.on_redirect(t, "never-seen")
            return REDIRECT
        if probe is not None:
            # Eq. 5 admission margin: positive admits.  Observed before
            # the test so both outcomes land in the same distribution.
            probe.on_margin(
                self.cache_age(t) - (t - last) * self.cost_model.alpha_f2r
            )
        if (t - last) * self.cost_model.alpha_f2r > self.cache_age(t):
            if probe is not None:
                probe.on_redirect(t, "stale")
            return REDIRECT

        if c1 - c0 + 1 > self.disk_chunks:
            # The request alone exceeds the disk; it can never be fully
            # served from this cache, so redirect it.
            if probe is not None:
                probe.on_redirect(t, "oversized")
            return REDIRECT

        # Touch the chunks already present first so LRU eviction cannot
        # pick a chunk this very request needs.
        disk = self._disk
        touch = disk.touch
        missing = []
        for c in range(c0, c1 + 1):
            chunk = (video, c)
            if chunk in disk:
                touch(chunk, t)
            else:
                missing.append(chunk)
        if not missing:
            if probe is not None:
                probe.on_serve(t, 0, 0)
            return SERVE_HIT

        evicted = 0
        free = self.disk_chunks - len(disk)
        for _ in range(len(missing) - free):
            victim, victim_last = disk.pop_oldest()
            if probe is not None:
                probe.on_evict(t, victim, victim_last)
            evicted += 1
        for chunk in missing:
            touch(chunk, t)

        if probe is not None:
            for chunk in missing:
                probe.on_fill(t, chunk)
            probe.on_serve(t, len(missing), evicted)
        return serve_response(len(missing), evicted)

    def handle_span_block(self, ts, videos, b0s, b1s, c0s, c1s) -> list:
        """Hoisted block walk over the tracker and disk recency dicts.

        Observably identical to :meth:`handle_span` element-wise — same
        tracker touch, cleanup cadence, admission test, probe-free chunk
        walk and eviction order — with the structure internals bound
        once per block instead of once per request.  With a telemetry
        probe attached the generic element-wise walk runs instead, so
        probe hook ordering is trivially preserved.
        """
        if self.probe is not None:
            return VideoCache.handle_span_block(
                self, ts, videos, b0s, b1s, c0s, c1s
            )
        alpha = self.cost_model.alpha_f2r
        disk_chunks = self.disk_chunks
        cleanup_interval = self._cleanup_interval
        since = self._requests_since_cleanup
        tracker = self._tracker
        tentries = tracker.raw_entries()
        tpop = tentries.pop
        disk = self._disk
        dentries = disk.raw_entries()
        dpop = dentries.pop
        inf = float("inf")
        responses: list = []
        append = responses.append
        last_t = None
        for t, video, c0, c1 in zip(ts, videos, c0s, c1s):
            last = tpop(video, None)
            tentries[video] = t
            last_t = t
            since += 1
            if since >= cleanup_interval:
                # _maybe_cleanup_tracker, inlined: drop tracker entries
                # that can no longer pass the admission test.
                since = 0
                if len(dentries) >= disk_chunks:
                    age = t - next(iter(dentries.values()))
                    cutoff = t - age / alpha
                    while tentries:
                        oldest = next(iter(tentries))
                        if tentries[oldest] >= cutoff:
                            break
                        del tentries[oldest]
            if last is None:
                append(REDIRECT)
                continue
            if len(dentries) < disk_chunks:
                age = inf
            else:
                age = t - next(iter(dentries.values()))
            if (t - last) * alpha > age:
                append(REDIRECT)
                continue
            if c1 - c0 + 1 > disk_chunks:
                append(REDIRECT)
                continue
            missing = None
            for c in range(c0, c1 + 1):
                chunk = (video, c)
                if dpop(chunk, None) is None:
                    if missing is None:
                        missing = [chunk]
                    else:
                        missing.append(chunk)
                else:
                    dentries[chunk] = t
            if missing is None:
                append(SERVE_HIT)
                continue
            evicted = len(dentries) + len(missing) - disk_chunks
            if evicted > 0:
                for _ in range(evicted):
                    del dentries[next(iter(dentries))]
            else:
                evicted = 0
            for chunk in missing:
                dentries[chunk] = t
            append(serve_response(len(missing), evicted))
        self._requests_since_cleanup = since
        if last_t is not None:
            tracker.advance_time(last_t)
            disk.advance_time(last_t)
        return responses

    def handle_span_block_kernel(self, block) -> "tuple[list, list]":
        """Vectorized admission pre-screen over one packed block.

        Every xLRU request whose response is REDIRECT mutates only the
        popularity tracker (the touch plus the cleanup cadence), never
        the disk — so any request *proven* redirected from block-start
        snapshots can skip the admission arithmetic, the disk-age read
        and the whole chunk walk.  Three screens are exact:

        * **never-seen** — the video's first in-block occurrence with no
          tracker-snapshot entry: the tracker cannot have gained it
          (touches only add videos requested earlier; cleanup only
          deletes), so ``last is None`` holds at the request.
        * **definitely-stale** — with the disk full at block start and
          oldest access ``o0``, the disk-oldest access only advances
          (fills append newest, evictions drop oldest), so the live
          cache age at request ``i`` is at most ``t_i - o0``; then
          ``(t_i - last) * alpha > t_i - o0`` implies the live test
          fails.  ``last`` here is the exact last access (in-block
          predecessor, else snapshot); if cleanup dropped the entry
          meanwhile the true response is REDIRECT anyway (never-seen).
        * **oversized** — spans larger than the disk redirect on every
          admission path.

        The scalar walk then runs with screened requests reduced to the
        tracker touch + interned REDIRECT.  Observably identical to
        :meth:`handle_span_block`, which remains the reference (and the
        fallback when the block is not vectorized or a probe is
        attached).
        """
        if self.probe is not None or not block.vectorized:
            return VideoCache.handle_span_block_kernel(self, block)
        np = kernels._np
        alpha = self.cost_model.alpha_f2r
        disk_chunks = self.disk_chunks
        tracker = self._tracker
        tentries = tracker.raw_entries()
        tpop = tentries.pop
        disk = self._disk
        dentries = disk.raw_entries()
        dpop = dentries.pop

        uniq, _order, _starts = block.video_groups()
        snap = kernels.snapshot_times(uniq, tentries)
        prev = block.prev_t()
        last_eff = np.where(np.isnan(prev), snap[block.video_inverse()], prev)
        redirect = np.isnan(last_eff)
        if len(dentries) >= disk_chunks:
            o0 = next(iter(dentries.values()))
            ts = block.ts
            redirect |= (ts - last_eff) * alpha > (ts - o0)
        redirect |= (block.c1s - block.c0s + 1) > disk_chunks
        screen = redirect.tolist()

        cleanup_interval = self._cleanup_interval
        since = self._requests_since_cleanup
        inf = float("inf")
        responses: list = []
        append = responses.append
        misses: list = []
        miss = misses.append
        # Cached (key, access time) of the disk-recency head: the oldest
        # entry changes only when it is itself touched or evicted, so
        # the admission age read is O(1) amortized instead of a fresh
        # next(iter(...)) per request.
        head_key = None
        head_t = 0.0
        i = -1
        last_t = None
        for t, video, c0, c1, scr in zip(
            block.ts_l, block.videos_l, block.c0s_l, block.c1s_l, screen
        ):
            i += 1
            last = tpop(video, None)
            tentries[video] = t
            last_t = t
            since += 1
            if since >= cleanup_interval:
                # _maybe_cleanup_tracker, inlined (see handle_span_block)
                since = 0
                if len(dentries) >= disk_chunks:
                    if head_key is None:
                        head_key = next(iter(dentries))
                        head_t = dentries[head_key]
                    cutoff = t - (t - head_t) / alpha
                    while tentries:
                        oldest = next(iter(tentries))
                        if tentries[oldest] >= cutoff:
                            break
                        del tentries[oldest]
            if scr:
                append(REDIRECT)
                miss(i)
                continue
            if last is None:
                append(REDIRECT)
                miss(i)
                continue
            if len(dentries) < disk_chunks:
                age = inf
            else:
                if head_key is None:
                    head_key = next(iter(dentries))
                    head_t = dentries[head_key]
                age = t - head_t
            if (t - last) * alpha > age:
                append(REDIRECT)
                miss(i)
                continue
            if c1 - c0 + 1 > disk_chunks:
                append(REDIRECT)
                miss(i)
                continue
            missing = None
            for c in range(c0, c1 + 1):
                chunk = (video, c)
                if dpop(chunk, None) is None:
                    if missing is None:
                        missing = [chunk]
                    else:
                        missing.append(chunk)
                else:
                    dentries[chunk] = t
                    if chunk == head_key:
                        head_key = None
            if missing is None:
                append(SERVE_HIT)
                continue
            evicted = len(dentries) + len(missing) - disk_chunks
            if evicted > 0:
                head_key = None
                for _ in range(evicted):
                    del dentries[next(iter(dentries))]
            else:
                evicted = 0
            for chunk in missing:
                dentries[chunk] = t
            append(serve_response(len(missing), evicted))
            miss(i)
        self._requests_since_cleanup = since
        if last_t is not None:
            tracker.advance_time(last_t)
            disk.advance_time(last_t)
        return responses, misses

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._disk

    def __len__(self) -> int:
        return len(self._disk)

    # -- xLRU specifics -------------------------------------------------------

    def cache_age(self, now: float) -> float:
        """Age of the oldest chunk access on disk (Section 5).

        A disk that is not yet full reports an unbounded age so that the
        admission test passes for any previously seen video (warm-up).
        """
        if len(self._disk) < self.disk_chunks:
            return float("inf")
        return self._disk.cache_age(now)

    def video_last_access(self, video: int) -> float | None:
        """Last tracked access time of ``video`` (None if untracked)."""
        return self._tracker.last_access(video)

    @property
    def tracked_videos(self) -> int:
        """Number of videos currently in the popularity tracker."""
        return len(self._tracker)

    def _maybe_cleanup_tracker(self, now: float) -> None:
        """Drop tracker entries that can no longer pass the admission test.

        An entry with last access ``t`` is useless once
        ``(now - t) * alpha > cache_age`` will hold for every future
        ``now``; since the left side only grows, the cutoff is
        ``now - cache_age / alpha``.  Dropping such entries is
        behaviour-preserving: a missing entry and a failing test both
        redirect.  Run periodically, as in the paper ("regularly
        cleaned up").
        """
        self._requests_since_cleanup += 1
        if self._requests_since_cleanup < self._cleanup_interval:
            return
        self._requests_since_cleanup = 0
        age = self.cache_age(now)
        if age == float("inf"):
            return
        self._tracker.evict_older_than(now - age / self.cost_model.alpha_f2r)
