"""xLRU Cache: the LRU-based baseline of Section 5.

Two recency structures cooperate:

* a **video popularity tracker** mapping video IDs to their last access
  time — the admission filter: a video qualifies for serving only if it
  was seen before *and* recently enough relative to the disk's cache
  age (LRU-2-like: the first request for a video is always redirected);
* a **disk cache** of fixed-size chunks under plain LRU replacement.

The admission test generalizes to any fill-to-redirect preference
``alpha_F2R`` (Eq. 5): redirect iff ::

    (t_now - t_last) * alpha_F2R > CacheAge()

i.e. with fills twice as costly as redirects (alpha = 2), a video must
be requested with a period at most *half* the cache age to be admitted.

The warm-up case the paper's pseudocode elides ("disk not full") is
handled by treating a non-full disk as having unbounded cache age: any
previously seen video is admitted while free space remains, and nothing
is evicted until the disk is full.
"""

from __future__ import annotations

from repro.core.base import REDIRECT, CacheResponse, Decision, VideoCache
from repro.core.costs import CostModel
from repro.structures.lru import AccessRecencyList
from repro.trace.requests import DEFAULT_CHUNK_BYTES, ChunkId, Request

__all__ = ["XlruCache"]


class XlruCache(VideoCache):
    """Video cache with LRU popularity tracking and replacement (§5)."""

    name = "xLRU"

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
        tracker_cleanup_interval: int = 1024,
    ) -> None:
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        self._tracker: AccessRecencyList[int] = AccessRecencyList()
        self._disk: AccessRecencyList[ChunkId] = AccessRecencyList()
        self._cleanup_interval = tracker_cleanup_interval
        self._requests_since_cleanup = 0

    # -- VideoCache interface ------------------------------------------------

    def handle(self, request: Request) -> CacheResponse:
        now = request.t
        last = self._tracker.last_access(request.video)
        self._tracker.touch(request.video, now)
        self._maybe_cleanup_tracker(now)

        if last is None:
            return REDIRECT
        if (now - last) * self.cost_model.alpha_f2r > self.cache_age(now):
            return REDIRECT

        chunks = list(request.chunk_ids(self.chunk_bytes))
        if len(chunks) > self.disk_chunks:
            # The request alone exceeds the disk; it can never be fully
            # served from this cache, so redirect it.
            return REDIRECT

        # Touch the chunks already present first so LRU eviction cannot
        # pick a chunk this very request needs.
        missing = []
        for chunk in chunks:
            if chunk in self._disk:
                self._disk.touch(chunk, now)
            else:
                missing.append(chunk)

        evicted = 0
        free = self.disk_chunks - len(self._disk)
        for _ in range(len(missing) - free):
            self._disk.pop_oldest()
            evicted += 1
        for chunk in missing:
            self._disk.touch(chunk, now)

        return CacheResponse(Decision.SERVE, filled_chunks=len(missing), evicted_chunks=evicted)

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._disk

    def __len__(self) -> int:
        return len(self._disk)

    # -- xLRU specifics -------------------------------------------------------

    def cache_age(self, now: float) -> float:
        """Age of the oldest chunk access on disk (Section 5).

        A disk that is not yet full reports an unbounded age so that the
        admission test passes for any previously seen video (warm-up).
        """
        if len(self._disk) < self.disk_chunks:
            return float("inf")
        return self._disk.cache_age(now)

    def video_last_access(self, video: int) -> float | None:
        """Last tracked access time of ``video`` (None if untracked)."""
        return self._tracker.last_access(video)

    @property
    def tracked_videos(self) -> int:
        """Number of videos currently in the popularity tracker."""
        return len(self._tracker)

    def _maybe_cleanup_tracker(self, now: float) -> None:
        """Drop tracker entries that can no longer pass the admission test.

        An entry with last access ``t`` is useless once
        ``(now - t) * alpha > cache_age`` will hold for every future
        ``now``; since the left side only grows, the cutoff is
        ``now - cache_age / alpha``.  Dropping such entries is
        behaviour-preserving: a missing entry and a failing test both
        redirect.  Run periodically, as in the paper ("regularly
        cleaned up").
        """
        self._requests_since_cleanup += 1
        if self._requests_since_cleanup < self._cleanup_interval:
            return
        self._requests_since_cleanup = 0
        age = self.cache_age(now)
        if age == float("inf"):
            return
        self._tracker.evict_older_than(now - age / self.cost_model.alpha_f2r)
