"""The paper's contribution: four video-CDN caching algorithms.

* :class:`XlruCache` — the LRU-based baseline (Section 5),
* :class:`CafeCache` — the chunk-aware, fill-efficient cache (Section 6),
* :class:`PsychicCache` — the offline greedy estimator (Section 8),
* :class:`OptimalCache` — the IP/LP-relaxed offline optimum (Section 7),

plus the classic "standard solution" baselines the paper argues are
insufficient (:mod:`repro.core.baselines`) and the shared cost model
(:mod:`repro.core.costs`).
"""

from repro.core.base import CacheResponse, Decision, VideoCache
from repro.core.baselines import BeladyCache, LfuAdmissionCache, PullThroughLruCache
from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.core.lru_variants import GreedyDualSizeCache, LruKCache
from repro.core.optimal import OptimalCache, OptimalSolution, solve_optimal
from repro.core.psychic import PsychicCache
from repro.core.snapshot import (
    load_snapshot,
    load_state_dict,
    save_snapshot,
    state_dict,
)
from repro.core.xlru import XlruCache

__all__ = [
    "CacheResponse",
    "Decision",
    "VideoCache",
    "CostModel",
    "XlruCache",
    "CafeCache",
    "PsychicCache",
    "OptimalCache",
    "OptimalSolution",
    "solve_optimal",
    "PullThroughLruCache",
    "LfuAdmissionCache",
    "BeladyCache",
    "LruKCache",
    "GreedyDualSizeCache",
    "state_dict",
    "load_state_dict",
    "save_snapshot",
    "load_snapshot",
]
