"""Shared numpy helpers for the per-cache block decision kernels.

The vectorized kernels (:meth:`~repro.core.base.VideoCache.handle_span_block_kernel`
overrides in :mod:`repro.core.xlru`, :mod:`repro.core.cafe` and
:mod:`repro.core.baselines`) all follow the same shape: snapshot the
mutable structures once per block, classify as many requests as
possible in whole-column numpy passes, then walk only the undecided
residue through the scalar per-request code.  This module holds the
snapshot/classification primitives they share:

* gathering per-unique-video state (tracker last-access times, hit
  counts) into aligned numpy columns for block-wide admission tests;
* per-video **residency summaries** — sorted cached-chunk-number
  arrays — and the searchsorted span probe that turns them into
  guaranteed-hit / zero-residency masks for whole requests.

Soundness conventions the kernels rely on (and the equivalence tests
enforce):

* Snapshots are taken at **block start**; a screen is only used when
  later in-block mutations cannot invalidate it (e.g. a span fully
  resident at block start stays resident until the first eviction, so
  hit screens are demoted to the scalar residue once anything is
  evicted).
* Screens may only pre-decide a request when the decision *and* the
  mutation footprint are exactly those of the scalar walk; anything
  uncertain stays in the residue.

All helpers require numpy (callers guard on ``block.vectorized``; the
``REPRO_NO_NUMPY`` lane never reaches them).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.trace.columnar import _np

__all__ = [
    "snapshot_times",
    "snapshot_counts",
    "chunks_by_video",
    "residency_arrays",
    "span_resident_counts",
]


def snapshot_times(uniq, times: dict) -> "object":
    """Gather ``times.get(v)`` for each unique video into a float column.

    Absent videos become NaN, so admission arithmetic can run on the
    whole column and ``isnan`` recovers the never-seen mask.  ``times``
    is a raw recency dict (video -> last access time); the loop runs
    over unique videos only, not over requests.
    """
    out = _np.empty(len(uniq), dtype=_np.float64)
    get = times.get
    nan = _np.nan
    for j, v in enumerate(uniq.tolist()):
        t = get(v)
        out[j] = nan if t is None else t
    return out


def snapshot_counts(uniq, counts: dict) -> "object":
    """Gather ``counts.get(v, 0)`` per unique video into an int column."""
    out = _np.empty(len(uniq), dtype=_np.int64)
    get = counts.get
    for j, v in enumerate(uniq.tolist()):
        out[j] = get(v, 0)
    return out


def chunks_by_video(chunk_keys: Iterable[Tuple[int, int]]) -> Dict[int, list]:
    """Group ``(video, chunk_number)`` keys into video -> chunk list.

    One pass over the resident set (bounded by the disk size), the raw
    material of :func:`residency_arrays` for caches that key their disk
    by whole chunk ids (xLRU, pull-through LRU, LFU).  Cafe maintains
    its per-video chunk sets incrementally and skips this step.
    """
    grouped: Dict[int, list] = {}
    for video, c in chunk_keys:
        bucket = grouped.get(video)
        if bucket is None:
            grouped[video] = [c]
        else:
            bucket.append(c)
    return grouped


def residency_arrays(uniq, grouped: Dict[int, "object"]) -> List[Optional["object"]]:
    """Per-unique-video sorted cached-chunk-number arrays.

    ``grouped`` maps video -> iterable of cached chunk numbers (a list
    from :func:`chunks_by_video` or a set like Cafe's
    ``_video_chunks``).  Videos with nothing cached get None, letting
    the span probe skip them without allocating.
    """
    arrays: List[Optional["object"]] = []
    get = grouped.get
    for v in uniq.tolist():
        chunks = get(v)
        if chunks:
            arr = _np.fromiter(chunks, dtype=_np.int64, count=len(chunks))
            arr.sort()
            arrays.append(arr)
        else:
            arrays.append(None)
    return arrays


def span_resident_counts(block, arrays: List[Optional["object"]]) -> "object":
    """How many chunks of each request's span were resident at block start.

    For request ``i`` with span ``[c0, c1]`` of video ``v``, counts the
    cached chunk numbers of ``v`` (from ``arrays``, aligned with
    ``block.video_groups()[0]``) that fall inside the span — two
    searchsorted probes per request, grouped per video.  ``counts[i] ==
    span size`` is the guaranteed-hit screen; ``counts[i] == 0`` the
    zero-residency screen.
    """
    uniq, order, starts = block.video_groups()
    c0s = block.c0s
    c1s = block.c1s
    counts = _np.zeros(block.n, dtype=_np.int64)
    searchsorted = _np.searchsorted
    for j in range(len(uniq)):
        arr = arrays[j]
        if arr is None:
            continue
        idx = order[starts[j] : starts[j + 1]]
        lo = searchsorted(arr, c0s[idx], side="left")
        hi = searchsorted(arr, c1s[idx], side="right")
        counts[idx] = hi - lo
    return counts
