"""Classic caching baselines the paper positions itself against.

Section 2 argues that "standard caching solutions" — fetch every miss
from the backend and manage replacement only — cannot address the video
CDN problem because they lack the serve-vs-redirect decision and cannot
comply with a fill-to-redirect preference.  These reference
implementations make that argument measurable:

* :class:`PullThroughLruCache` — the standard Web-cache pattern: every
  miss is cache-filled, chunk replacement is LRU.  Its ingress is
  unbounded by design; at ``alpha_F2R > 1`` its efficiency collapses.
* :class:`LfuAdmissionCache` — frequency-flavoured variant (LFU
  replacement with periodic aging, admission after a minimum number of
  video hits), representative of the LFU/LRU-K family of Section 3.
* :class:`BeladyCache` — Belady's offline optimal *replacement* [5]:
  always serve, evict the chunk requested farthest in the future.  The
  optimal answer to the classic problem, and still not competitive with
  Psychic/Optimal on the CDN problem, because the classic problem is
  the wrong problem.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Dict, Optional, Sequence

from repro.core import kernels
from repro.core.base import (
    REDIRECT,
    SERVE_HIT,
    CacheResponse,
    Decision,
    VideoCache,
    serve_response,
)
from repro.core.costs import CostModel
from repro.structures.lru import AccessRecencyList
from repro.structures.scoreheap import ScoreHeap
from repro.trace.requests import DEFAULT_CHUNK_BYTES, ChunkId, Request

__all__ = ["PullThroughLruCache", "LfuAdmissionCache", "BeladyCache"]

_INF = float("inf")


class PullThroughLruCache(VideoCache):
    """Fetch-on-miss LRU: the standard Web-proxy pattern (Section 2)."""

    name = "PullLRU"
    cost_sensitive = False  # always serves; never consults the cost model

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
    ) -> None:
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        self._disk: AccessRecencyList[ChunkId] = AccessRecencyList()

    def handle(self, request: Request) -> CacheResponse:
        k = self.chunk_bytes
        return self.handle_span(
            request.t,
            request.video,
            request.b0,
            request.b1,
            request.b0 // k,
            request.b1 // k,
        )

    def handle_span(
        self, t: float, video: int, b0: int, b1: int, c0: int, c1: int
    ) -> CacheResponse:
        if c1 - c0 + 1 > self.disk_chunks:
            return REDIRECT
        disk = self._disk
        touch = disk.touch
        missing = []
        for c in range(c0, c1 + 1):
            chunk = (video, c)
            if chunk in disk:
                touch(chunk, t)
            else:
                missing.append(chunk)
        if not missing:
            return SERVE_HIT
        evicted = 0
        free = self.disk_chunks - len(disk)
        for _ in range(len(missing) - free):
            disk.pop_oldest()
            evicted += 1
        for chunk in missing:
            touch(chunk, t)
        return serve_response(len(missing), evicted)

    def handle_span_block(self, ts, videos, b0s, b1s, c0s, c1s) -> list:
        # Hoisted block walk: one dict probe per chunk against the raw
        # recency dict, no per-request method dispatch.  Observably
        # identical to handle_span element-wise (same probe/touch/evict
        # order), which the batched-lane equivalence tests enforce.
        disk_chunks = self.disk_chunks
        disk = self._disk
        entries = disk.raw_entries()
        pop = entries.pop
        responses: list = []
        append = responses.append
        last_t = None
        for t, video, c0, c1 in zip(ts, videos, c0s, c1s):
            if c1 - c0 + 1 > disk_chunks:
                append(REDIRECT)
                continue
            last_t = t
            missing = None
            for c in range(c0, c1 + 1):
                chunk = (video, c)
                if pop(chunk, None) is None:
                    if missing is None:
                        missing = [chunk]
                    else:
                        missing.append(chunk)
                else:
                    entries[chunk] = t
            if missing is None:
                append(SERVE_HIT)
                continue
            evicted = len(entries) + len(missing) - disk_chunks
            if evicted > 0:
                for _ in range(evicted):
                    del entries[next(iter(entries))]
            else:
                evicted = 0
            for chunk in missing:
                entries[chunk] = t
            append(serve_response(len(missing), evicted))
        if last_t is not None:
            disk.advance_time(last_t)
        return responses

    def handle_span_block_kernel(self, block) -> "tuple[list, list]":
        """Residency pre-screen over one packed block.

        Two block-wide classifications from snapshots taken at block
        start:

        * **oversized** spans redirect with zero mutation;
        * spans **fully resident** at block start stay resident until
          the first in-block eviction (fills only add chunks), so until
          then a screened request is a guaranteed hit whose only
          mutation is the grouped LRU touch of its own chunks — the
          membership walk and fill/evict bookkeeping are skipped.  The
          first eviction demotes the remaining screened hits back to
          the scalar residue walk.

        Observably identical to :meth:`handle_span_block` (the fallback
        when the block is not vectorized).
        """
        if self.probe is not None or not block.vectorized:
            return VideoCache.handle_span_block_kernel(self, block)
        disk_chunks = self.disk_chunks
        disk = self._disk
        entries = disk.raw_entries()
        pop = entries.pop

        uniq, _order, _starts = block.video_groups()
        arrays = kernels.residency_arrays(uniq, kernels.chunks_by_video(entries))
        sizes = block.c1s - block.c0s + 1
        counts = kernels.span_resident_counts(block, arrays)
        # 0 undecided, 1 redirect, 2 guaranteed hit
        screen = (counts == sizes).view(kernels._np.int8) * 2
        screen[sizes > disk_chunks] = 1
        screen_l = screen.tolist()

        responses: list = []
        append = responses.append
        misses: list = []
        miss = misses.append
        hits_valid = True
        i = -1
        last_t = None
        for t, video, c0, c1, scr in zip(
            block.ts_l, block.videos_l, block.c0s_l, block.c1s_l, screen_l
        ):
            i += 1
            if scr == 1:
                append(REDIRECT)
                miss(i)
                continue
            last_t = t
            if scr == 2 and hits_valid:
                for c in range(c0, c1 + 1):
                    chunk = (video, c)
                    pop(chunk)
                    entries[chunk] = t
                append(SERVE_HIT)
                continue
            missing = None
            for c in range(c0, c1 + 1):
                chunk = (video, c)
                if pop(chunk, None) is None:
                    if missing is None:
                        missing = [chunk]
                    else:
                        missing.append(chunk)
                else:
                    entries[chunk] = t
            if missing is None:
                append(SERVE_HIT)
                continue
            evicted = len(entries) + len(missing) - disk_chunks
            if evicted > 0:
                hits_valid = False
                for _ in range(evicted):
                    del entries[next(iter(entries))]
            else:
                evicted = 0
            for chunk in missing:
                entries[chunk] = t
            append(serve_response(len(missing), evicted))
            miss(i)
        if last_t is not None:
            disk.advance_time(last_t)
        return responses, misses

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._disk

    def __len__(self) -> int:
        return len(self._disk)


class LfuAdmissionCache(VideoCache):
    """LFU replacement with hit-count admission and periodic aging.

    Admission: a video qualifies once it has been requested at least
    ``min_video_hits`` times (first-seen requests are redirected, like
    xLRU).  Replacement: evict the lowest-frequency chunk; frequencies
    are halved every ``aging_interval`` handled requests so stale
    popularity cannot pollute the cache forever (the paper's Section 3
    critique of frequency-based schemes).
    """

    name = "LFU"
    cost_sensitive = False  # admission/aging are frequency-only

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
        min_video_hits: int = 2,
        aging_interval: int = 10_000,
        treap_seed: int = 0,
    ) -> None:
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        if min_video_hits < 1:
            raise ValueError(f"min_video_hits must be >= 1, got {min_video_hits}")
        if aging_interval < 1:
            raise ValueError(f"aging_interval must be >= 1, got {aging_interval}")
        self.min_video_hits = min_video_hits
        self.aging_interval = aging_interval
        self._video_hits: Counter = Counter()
        self._freq: Dict[ChunkId, float] = {}
        self._cached: ScoreHeap[ChunkId] = ScoreHeap(seed=treap_seed)
        self._handled = 0

    def handle(self, request: Request) -> CacheResponse:
        k = self.chunk_bytes
        return self.handle_span(
            request.t,
            request.video,
            request.b0,
            request.b1,
            request.b0 // k,
            request.b1 // k,
        )

    def handle_span(
        self, t: float, video: int, b0: int, b1: int, c0: int, c1: int
    ) -> CacheResponse:
        self._handled += 1
        if self._handled % self.aging_interval == 0:
            self._age()
        self._video_hits[video] += 1
        cached = self._cached
        freq = self._freq
        missing = []
        for c in range(c0, c1 + 1):
            chunk = (video, c)
            if chunk in cached:
                score = freq.get(chunk, 0.0) + 1.0
                freq[chunk] = score
                cached.insert(chunk, score)
            else:
                missing.append(chunk)

        if c1 - c0 + 1 > self.disk_chunks:
            return REDIRECT
        if self._video_hits[video] < self.min_video_hits:
            return REDIRECT

        if not missing:
            return SERVE_HIT
        evicted = 0
        free = self.disk_chunks - len(cached)
        need = len(missing) - free
        if need > 0:
            exclude = {(video, c) for c in range(c0, c1 + 1)}
            for chunk, _score in cached.pop_n_smallest(need, exclude=exclude):
                freq.pop(chunk, None)
                evicted += 1
        for chunk in missing:
            score = freq.get(chunk, 0.0) + 1.0
            freq[chunk] = score
            cached.insert(chunk, score)
        return serve_response(len(missing), evicted)

    def handle_span_block(self, ts, videos, b0s, b1s, c0s, c1s) -> list:
        # Hoisted block walk: the aging cadence, hit counter, frequency
        # dict and frequency-set internals bound once per block instead
        # of once per request.  Observably identical to handle_span
        # element-wise, which the batched-lane equivalence tests
        # enforce; membership runs against the ScoreHeap's live index
        # dict (read-only — mutations go through insert/remove).
        disk_chunks = self.disk_chunks
        min_hits = self.min_video_hits
        aging_interval = self.aging_interval
        handled = self._handled
        video_hits = self._video_hits
        cached = self._cached
        insert = cached.insert
        index = cached.raw_index()
        freq = self._freq
        get_freq = freq.get
        responses: list = []
        append = responses.append
        for t, video, c0, c1 in zip(ts, videos, c0s, c1s):
            handled += 1
            if handled % aging_interval == 0:
                self._handled = handled
                self._age()
            video_hits[video] += 1
            missing = None
            for c in range(c0, c1 + 1):
                chunk = (video, c)
                if chunk in index:
                    score = get_freq(chunk, 0.0) + 1.0
                    freq[chunk] = score
                    insert(chunk, score)
                elif missing is None:
                    missing = [chunk]
                else:
                    missing.append(chunk)
            if c1 - c0 + 1 > disk_chunks:
                append(REDIRECT)
                continue
            if video_hits[video] < min_hits:
                append(REDIRECT)
                continue
            if missing is None:
                append(SERVE_HIT)
                continue
            evicted = 0
            need = len(missing) - (disk_chunks - len(index))
            if need > 0:
                exclude = {(video, c) for c in range(c0, c1 + 1)}
                for chunk, _score in cached.pop_n_smallest(need, exclude=exclude):
                    freq.pop(chunk, None)
                    evicted += 1
            for chunk in missing:
                score = get_freq(chunk, 0.0) + 1.0
                freq[chunk] = score
                insert(chunk, score)
            append(serve_response(len(missing), evicted))
        self._handled = handled
        return responses

    def handle_span_block_kernel(self, block) -> "tuple[list, list]":
        """Unproven-video pre-screen over one packed block.

        A request is *provably* redirected with no per-chunk work when,
        at block start,

        * it is its video's first in-block occurrence (so no in-block
          hit raised the count),
        * the video's snapshot hit count ``s`` satisfies ``s + 1 <
          min_video_hits`` (aging only lowers counts, so the live test
          fails a fortiori), and
        * none of its span is resident (evictions only shrink a video's
          resident set, and its own fills can only happen at *later*
          occurrences), so the per-chunk re-key walk would do nothing.

        Such requests reduce to the counter bumps plus the interned
        REDIRECT; everything else walks the scalar hoisted path.
        Observably identical to :meth:`handle_span_block` (the fallback
        when the block is not vectorized).
        """
        if self.probe is not None or not block.vectorized:
            return VideoCache.handle_span_block_kernel(self, block)
        np = kernels._np
        cached = self._cached
        index = cached.raw_index()

        uniq, _order, _starts = block.video_groups()
        snap_hits = kernels.snapshot_counts(uniq, self._video_hits)
        arrays = kernels.residency_arrays(uniq, kernels.chunks_by_video(index))
        counts = kernels.span_resident_counts(block, arrays)
        inv = block.video_inverse()
        screen = (
            block.first_occurrence()
            & (snap_hits[inv] + 1 < self.min_video_hits)
            & (counts == 0)
        ).tolist()

        disk_chunks = self.disk_chunks
        min_hits = self.min_video_hits
        aging_interval = self.aging_interval
        handled = self._handled
        video_hits = self._video_hits
        insert = cached.insert
        freq = self._freq
        get_freq = freq.get
        responses: list = []
        append = responses.append
        misses: list = []
        miss = misses.append
        i = -1
        for t, video, c0, c1, scr in zip(
            block.ts_l, block.videos_l, block.c0s_l, block.c1s_l, screen
        ):
            i += 1
            handled += 1
            if handled % aging_interval == 0:
                self._handled = handled
                self._age()
            video_hits[video] += 1
            if scr:
                append(REDIRECT)
                miss(i)
                continue
            missing = None
            for c in range(c0, c1 + 1):
                chunk = (video, c)
                if chunk in index:
                    score = get_freq(chunk, 0.0) + 1.0
                    freq[chunk] = score
                    insert(chunk, score)
                elif missing is None:
                    missing = [chunk]
                else:
                    missing.append(chunk)
            if c1 - c0 + 1 > disk_chunks:
                append(REDIRECT)
                miss(i)
                continue
            if video_hits[video] < min_hits:
                append(REDIRECT)
                miss(i)
                continue
            if missing is None:
                append(SERVE_HIT)
                continue
            evicted = 0
            need = len(missing) - (disk_chunks - len(index))
            if need > 0:
                exclude = {(video, c) for c in range(c0, c1 + 1)}
                for chunk, _score in cached.pop_n_smallest(need, exclude=exclude):
                    freq.pop(chunk, None)
                    evicted += 1
            for chunk in missing:
                score = get_freq(chunk, 0.0) + 1.0
                freq[chunk] = score
                insert(chunk, score)
            append(serve_response(len(missing), evicted))
            miss(i)
        self._handled = handled
        return responses, misses

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._cached

    def __len__(self) -> int:
        return len(self._cached)

    def _age(self) -> None:
        """Halve all frequencies and re-key the cached set.

        Re-keying keeps tree scores equal to the live frequencies, so a
        freshly incremented chunk compares correctly against aged ones.
        """
        for chunk in list(self._freq):
            self._freq[chunk] /= 2.0
            if chunk in self._cached:
                self._cached.insert(chunk, self._freq[chunk])
        for video in list(self._video_hits):
            self._video_hits[video] //= 2
            if self._video_hits[video] == 0:
                del self._video_hits[video]


class BeladyCache(VideoCache):
    """Belady's offline replacement [5]: always serve, evict farthest.

    The optimum for the *classic* caching problem (no redirect option);
    included to quantify how much the serve-vs-redirect decision itself
    is worth beyond perfect replacement.
    """

    name = "Belady"
    offline = True
    cost_sensitive = False  # always serves; evicts purely by next use

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
        treap_seed: int = 0,
    ) -> None:
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        self._future: Dict[ChunkId, Deque[float]] = {}
        self._cached: ScoreHeap[ChunkId] = ScoreHeap(seed=treap_seed)
        self._prepared: Optional[Sequence[Request]] = None
        self._cursor = 0

    def prepare(self, requests: Sequence[Request]) -> None:
        self._future.clear()
        for r in requests:
            for chunk in r.chunk_ids(self.chunk_bytes):
                self._future.setdefault(chunk, deque()).append(r.t)
        self._prepared = requests
        self._cursor = 0

    def handle(self, request: Request) -> CacheResponse:
        if self._prepared is None:
            raise RuntimeError("BeladyCache.handle() before prepare()")
        if (
            self._cursor >= len(self._prepared)
            or self._prepared[self._cursor] != request
        ):
            raise RuntimeError(
                "requests must be replayed to BeladyCache in exactly the "
                "order given to prepare()"
            )
        self._cursor += 1

        chunks = list(request.chunk_ids(self.chunk_bytes))
        for chunk in chunks:
            queue = self._future.get(chunk)
            if queue:
                queue.popleft()
            if chunk in self._cached:
                self._cached.insert(chunk, self._eviction_key(chunk))

        if len(chunks) > self.disk_chunks:
            return REDIRECT

        missing = [c for c in chunks if c not in self._cached]
        evicted = 0
        need = len(missing) - (self.disk_chunks - len(self._cached))
        if need > 0:
            for chunk, _key in self._cached.n_smallest(need, exclude=set(chunks)):
                self._cached.remove(chunk)
                evicted += 1
        for chunk in missing:
            self._cached.insert(chunk, self._eviction_key(chunk))
        return CacheResponse(
            Decision.SERVE, filled_chunks=len(missing), evicted_chunks=evicted
        )

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._cached

    def __len__(self) -> int:
        return len(self._cached)

    def _eviction_key(self, chunk: ChunkId) -> float:
        """Ascending key: never-requested-again first, then farthest."""
        queue = self._future.get(chunk)
        return -(queue[0] if queue else _INF)
