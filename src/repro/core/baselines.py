"""Classic caching baselines the paper positions itself against.

Section 2 argues that "standard caching solutions" — fetch every miss
from the backend and manage replacement only — cannot address the video
CDN problem because they lack the serve-vs-redirect decision and cannot
comply with a fill-to-redirect preference.  These reference
implementations make that argument measurable:

* :class:`PullThroughLruCache` — the standard Web-cache pattern: every
  miss is cache-filled, chunk replacement is LRU.  Its ingress is
  unbounded by design; at ``alpha_F2R > 1`` its efficiency collapses.
* :class:`LfuAdmissionCache` — frequency-flavoured variant (LFU
  replacement with periodic aging, admission after a minimum number of
  video hits), representative of the LFU/LRU-K family of Section 3.
* :class:`BeladyCache` — Belady's offline optimal *replacement* [5]:
  always serve, evict the chunk requested farthest in the future.  The
  optimal answer to the classic problem, and still not competitive with
  Psychic/Optimal on the CDN problem, because the classic problem is
  the wrong problem.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Dict, Optional, Sequence

from repro.core.base import (
    REDIRECT,
    SERVE_HIT,
    CacheResponse,
    Decision,
    VideoCache,
    serve_response,
)
from repro.core.costs import CostModel
from repro.structures.lru import AccessRecencyList
from repro.structures.treap import TreapMap
from repro.trace.requests import DEFAULT_CHUNK_BYTES, ChunkId, Request

__all__ = ["PullThroughLruCache", "LfuAdmissionCache", "BeladyCache"]

_INF = float("inf")


class PullThroughLruCache(VideoCache):
    """Fetch-on-miss LRU: the standard Web-proxy pattern (Section 2)."""

    name = "PullLRU"
    cost_sensitive = False  # always serves; never consults the cost model

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
    ) -> None:
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        self._disk: AccessRecencyList[ChunkId] = AccessRecencyList()

    def handle(self, request: Request) -> CacheResponse:
        k = self.chunk_bytes
        return self.handle_span(
            request.t,
            request.video,
            request.b0,
            request.b1,
            request.b0 // k,
            request.b1 // k,
        )

    def handle_span(
        self, t: float, video: int, b0: int, b1: int, c0: int, c1: int
    ) -> CacheResponse:
        if c1 - c0 + 1 > self.disk_chunks:
            return REDIRECT
        disk = self._disk
        touch = disk.touch
        missing = []
        for c in range(c0, c1 + 1):
            chunk = (video, c)
            if chunk in disk:
                touch(chunk, t)
            else:
                missing.append(chunk)
        if not missing:
            return SERVE_HIT
        evicted = 0
        free = self.disk_chunks - len(disk)
        for _ in range(len(missing) - free):
            disk.pop_oldest()
            evicted += 1
        for chunk in missing:
            touch(chunk, t)
        return serve_response(len(missing), evicted)

    def handle_span_block(self, ts, videos, b0s, b1s, c0s, c1s) -> list:
        # Hoisted block walk: one dict probe per chunk against the raw
        # recency dict, no per-request method dispatch.  Observably
        # identical to handle_span element-wise (same probe/touch/evict
        # order), which the batched-lane equivalence tests enforce.
        disk_chunks = self.disk_chunks
        disk = self._disk
        entries = disk.raw_entries()
        pop = entries.pop
        responses: list = []
        append = responses.append
        last_t = None
        for t, video, c0, c1 in zip(ts, videos, c0s, c1s):
            if c1 - c0 + 1 > disk_chunks:
                append(REDIRECT)
                continue
            last_t = t
            missing = None
            for c in range(c0, c1 + 1):
                chunk = (video, c)
                if pop(chunk, None) is None:
                    if missing is None:
                        missing = [chunk]
                    else:
                        missing.append(chunk)
                else:
                    entries[chunk] = t
            if missing is None:
                append(SERVE_HIT)
                continue
            evicted = len(entries) + len(missing) - disk_chunks
            if evicted > 0:
                for _ in range(evicted):
                    del entries[next(iter(entries))]
            else:
                evicted = 0
            for chunk in missing:
                entries[chunk] = t
            append(serve_response(len(missing), evicted))
        if last_t is not None:
            disk.advance_time(last_t)
        return responses

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._disk

    def __len__(self) -> int:
        return len(self._disk)


class LfuAdmissionCache(VideoCache):
    """LFU replacement with hit-count admission and periodic aging.

    Admission: a video qualifies once it has been requested at least
    ``min_video_hits`` times (first-seen requests are redirected, like
    xLRU).  Replacement: evict the lowest-frequency chunk; frequencies
    are halved every ``aging_interval`` handled requests so stale
    popularity cannot pollute the cache forever (the paper's Section 3
    critique of frequency-based schemes).
    """

    name = "LFU"
    cost_sensitive = False  # admission/aging are frequency-only

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
        min_video_hits: int = 2,
        aging_interval: int = 10_000,
        treap_seed: int = 0,
    ) -> None:
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        if min_video_hits < 1:
            raise ValueError(f"min_video_hits must be >= 1, got {min_video_hits}")
        if aging_interval < 1:
            raise ValueError(f"aging_interval must be >= 1, got {aging_interval}")
        self.min_video_hits = min_video_hits
        self.aging_interval = aging_interval
        self._video_hits: Counter = Counter()
        self._freq: Dict[ChunkId, float] = {}
        self._cached: TreapMap[ChunkId] = TreapMap(seed=treap_seed)
        self._handled = 0

    def handle(self, request: Request) -> CacheResponse:
        k = self.chunk_bytes
        return self.handle_span(
            request.t,
            request.video,
            request.b0,
            request.b1,
            request.b0 // k,
            request.b1 // k,
        )

    def handle_span(
        self, t: float, video: int, b0: int, b1: int, c0: int, c1: int
    ) -> CacheResponse:
        self._handled += 1
        if self._handled % self.aging_interval == 0:
            self._age()
        self._video_hits[video] += 1
        cached = self._cached
        freq = self._freq
        missing = []
        for c in range(c0, c1 + 1):
            chunk = (video, c)
            if chunk in cached:
                score = freq.get(chunk, 0.0) + 1.0
                freq[chunk] = score
                cached.insert(chunk, score)
            else:
                missing.append(chunk)

        if c1 - c0 + 1 > self.disk_chunks:
            return REDIRECT
        if self._video_hits[video] < self.min_video_hits:
            return REDIRECT

        if not missing:
            return SERVE_HIT
        evicted = 0
        free = self.disk_chunks - len(cached)
        need = len(missing) - free
        if need > 0:
            exclude = {(video, c) for c in range(c0, c1 + 1)}
            victims = cached.n_smallest(need, exclude=exclude)
            for chunk, _score in victims:
                cached.remove(chunk)
                freq.pop(chunk, None)
                evicted += 1
        for chunk in missing:
            score = freq.get(chunk, 0.0) + 1.0
            freq[chunk] = score
            cached.insert(chunk, score)
        return serve_response(len(missing), evicted)

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._cached

    def __len__(self) -> int:
        return len(self._cached)

    def _age(self) -> None:
        """Halve all frequencies and re-key the cached set.

        Re-keying keeps tree scores equal to the live frequencies, so a
        freshly incremented chunk compares correctly against aged ones.
        """
        for chunk in list(self._freq):
            self._freq[chunk] /= 2.0
            if chunk in self._cached:
                self._cached.insert(chunk, self._freq[chunk])
        for video in list(self._video_hits):
            self._video_hits[video] //= 2
            if self._video_hits[video] == 0:
                del self._video_hits[video]


class BeladyCache(VideoCache):
    """Belady's offline replacement [5]: always serve, evict farthest.

    The optimum for the *classic* caching problem (no redirect option);
    included to quantify how much the serve-vs-redirect decision itself
    is worth beyond perfect replacement.
    """

    name = "Belady"
    offline = True
    cost_sensitive = False  # always serves; evicts purely by next use

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
        treap_seed: int = 0,
    ) -> None:
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        self._future: Dict[ChunkId, Deque[float]] = {}
        self._cached: TreapMap[ChunkId] = TreapMap(seed=treap_seed)
        self._prepared: Optional[Sequence[Request]] = None
        self._cursor = 0

    def prepare(self, requests: Sequence[Request]) -> None:
        self._future.clear()
        for r in requests:
            for chunk in r.chunk_ids(self.chunk_bytes):
                self._future.setdefault(chunk, deque()).append(r.t)
        self._prepared = requests
        self._cursor = 0

    def handle(self, request: Request) -> CacheResponse:
        if self._prepared is None:
            raise RuntimeError("BeladyCache.handle() before prepare()")
        if (
            self._cursor >= len(self._prepared)
            or self._prepared[self._cursor] != request
        ):
            raise RuntimeError(
                "requests must be replayed to BeladyCache in exactly the "
                "order given to prepare()"
            )
        self._cursor += 1

        chunks = list(request.chunk_ids(self.chunk_bytes))
        for chunk in chunks:
            queue = self._future.get(chunk)
            if queue:
                queue.popleft()
            if chunk in self._cached:
                self._cached.insert(chunk, self._eviction_key(chunk))

        if len(chunks) > self.disk_chunks:
            return REDIRECT

        missing = [c for c in chunks if c not in self._cached]
        evicted = 0
        need = len(missing) - (self.disk_chunks - len(self._cached))
        if need > 0:
            for chunk, _key in self._cached.n_smallest(need, exclude=set(chunks)):
                self._cached.remove(chunk)
                evicted += 1
        for chunk in missing:
            self._cached.insert(chunk, self._eviction_key(chunk))
        return CacheResponse(
            Decision.SERVE, filled_chunks=len(missing), evicted_chunks=evicted
        )

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._cached

    def __len__(self) -> int:
        return len(self._cached)

    def _eviction_key(self, chunk: ChunkId) -> float:
        """Ascending key: never-requested-again first, then farthest."""
        queue = self._future.get(chunk)
        return -(queue[0] if queue else _INF)
