"""Related-work LRU variants (Section 3's comparators).

The paper positions its algorithms against the classic replacement
literature: "Variants of LRU, such as the Greedy Dual Size (GDS) [7]
and GDS-Popularity [13] algorithms ... Other LRU variants try to
incorporate access frequency information such as the LRU-K [17] and
LNC-W3 [24] algorithms."  These implementations adapt the two most
cited of those to the video-CDN setting so the §3 argument — that
classic replacement policies don't address the serve-vs-redirect
decision — can be measured instead of assumed:

* :class:`LruKCache` — LRU-K [O'Neil et al., SIGMOD'93]: track the
  K-th most recent access time per video; a video with fewer than K
  accesses is "unproven" and gets redirected (a generalization of
  xLRU's LRU-2-flavoured admission); chunk replacement evicts the
  chunk whose video has the oldest K-th access.
* :class:`GreedyDualSizeCache` — GDS [Cao & Irani, USITS'97]: each
  cached chunk carries a credit ``H = L + cost/size``; eviction takes
  the minimum-H chunk and raises the global inflation ``L`` to it.
  With fixed-size chunks the size term degenerates (as the paper notes:
  "we deal with fixed-size chunks ... the size is not a concern"), so
  cost/size reduces to a constant and GDS degrades gracefully toward
  LRU-with-aging — which is precisely the paper's point.

Both always serve once admission passes: they have no
cost-model-driven redirect decision, so neither can comply with
``alpha_F2R`` (they accept a cost model only for accounting parity).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

from repro.core.base import (
    REDIRECT,
    SERVE_HIT,
    CacheResponse,
    VideoCache,
    serve_response,
)
from repro.core.costs import CostModel
from repro.structures.scoreheap import ScoreHeap
from repro.trace.requests import DEFAULT_CHUNK_BYTES, ChunkId, Request

__all__ = ["LruKCache", "GreedyDualSizeCache"]

_INF = float("inf")


class LruKCache(VideoCache):
    """LRU-K admission and replacement at video granularity (§3, [17])."""

    name = "LRU-K"
    cost_sensitive = False  # admission/eviction use access recency only

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
        k: int = 2,
        history_factor: float = 4.0,
        treap_seed: int = 0,
    ) -> None:
        """``k``: accesses required before a video is cacheable (k=2
        mirrors xLRU's "first request is always redirected").
        ``history_factor`` bounds the per-video access-history table to
        ``history_factor * disk_chunks`` videos, recycled LRU-wise.
        """
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if history_factor <= 0:
            raise ValueError(f"history_factor must be positive, got {history_factor}")
        self.k = k
        #: video -> its last K access times (most recent last)
        self._history: Dict[int, Deque[float]] = {}
        self._max_history = max(1, int(history_factor * disk_chunks))
        #: cached chunks scored by their video's K-th-most-recent access
        self._cached: ScoreHeap[ChunkId] = ScoreHeap(seed=treap_seed)
        self._video_chunks: Dict[int, set] = {}

    # -- VideoCache interface ------------------------------------------------

    def handle(self, request: Request) -> CacheResponse:
        k = self.chunk_bytes
        return self.handle_span(
            request.t,
            request.video,
            request.b0,
            request.b1,
            request.b0 // k,
            request.b1 // k,
        )

    def handle_span(
        self, t: float, video: int, b0: int, b1: int, c0: int, c1: int
    ) -> CacheResponse:
        history = self._history.get(video)
        if history is None:
            # Record this access *before* trimming: an empty history
            # keys as -inf, so trimming first would evict the video
            # being recorded whenever the table is full — new videos
            # could then never accumulate the K accesses admission
            # requires.  With the access recorded the video keys as the
            # most recent and a genuinely stale entry is dropped
            # instead.  (Re-fetch afterwards: when every other tracked
            # video has cached chunks, this video is still the only
            # trimmable entry and may legitimately be gone.)
            history = deque(maxlen=self.k)
            self._history[video] = history
            history.append(t)
            self._trim_history()
            history = self._history.get(video)
        else:
            history.append(t)

        cached = self._cached
        score = self._kth_access(video)
        # re-key this video's cached chunks under its new K-distance
        for chunk_number in self._video_chunks.get(video, ()):
            cached.insert((video, chunk_number), score)

        if c1 - c0 + 1 > self.disk_chunks:
            return REDIRECT
        if history is None or len(history) < self.k:
            # "unproven" video: below K recorded accesses (or trimmed
            # right back out of a table crowded with cached videos)
            return REDIRECT

        missing = [
            (video, c) for c in range(c0, c1 + 1) if (video, c) not in cached
        ]
        if not missing:
            return SERVE_HIT

        evicted = 0
        need = len(missing) - (self.disk_chunks - len(cached))
        if need > 0:
            exclude = {(video, c) for c in range(c0, c1 + 1)}
            for chunk, _score in cached.n_smallest(need, exclude=exclude):
                self._evict(chunk)
                evicted += 1
        siblings = self._video_chunks.setdefault(video, set())
        for chunk in missing:
            cached.insert(chunk, score)
            siblings.add(chunk[1])
        return serve_response(len(missing), evicted)

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._cached

    def __len__(self) -> int:
        return len(self._cached)

    # -- internals -----------------------------------------------------------

    def _kth_access(self, video: int) -> float:
        """The K-th most recent access time (the LRU-K ordering key);
        ``-inf`` while the video has fewer than K accesses."""
        history = self._history.get(video)
        if history is None or len(history) < self.k:
            return -_INF
        return history[0]

    def _evict(self, chunk: ChunkId) -> None:
        self._cached.remove(chunk)
        siblings = self._video_chunks.get(chunk[0])
        if siblings is not None:
            siblings.discard(chunk[1])
            if not siblings:
                del self._video_chunks[chunk[0]]

    def _trim_history(self) -> None:
        """Bound the history table, dropping the stalest videos first."""
        while len(self._history) > self._max_history:
            victim = min(
                self._history,
                key=lambda v: self._history[v][-1] if self._history[v] else -_INF,
            )
            if victim in self._video_chunks:
                # never orphan a cached video's history; drop the next
                # stalest uncached one instead, if any exists
                uncached = [
                    v for v in self._history if v not in self._video_chunks
                ]
                if not uncached:
                    break
                victim = min(uncached, key=lambda v: self._history[v][-1])
            del self._history[victim]


class GreedyDualSizeCache(VideoCache):
    """Greedy-Dual-Size replacement on fixed-size chunks (§3, [7]).

    Credit on (re)access: ``H(chunk) = L + cost / size``.  With unit
    chunk sizes and a fill-cost numerator this is GDS(1); eviction pops
    the minimum-H chunk and advances the inflation value ``L`` to its
    credit, which ages everything else relatively.
    """

    name = "GDS"

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
        treap_seed: int = 0,
    ) -> None:
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        self._cached: ScoreHeap[ChunkId] = ScoreHeap(seed=treap_seed)
        self._inflation = 0.0

    def handle(self, request: Request) -> CacheResponse:
        k = self.chunk_bytes
        return self.handle_span(
            request.t,
            request.video,
            request.b0,
            request.b1,
            request.b0 // k,
            request.b1 // k,
        )

    def handle_span(
        self, t: float, video: int, b0: int, b1: int, c0: int, c1: int
    ) -> CacheResponse:
        if c1 - c0 + 1 > self.disk_chunks:
            return REDIRECT

        cached = self._cached
        credit = self._inflation + self.cost_model.fill_cost
        missing = []
        for c in range(c0, c1 + 1):
            chunk = (video, c)
            if chunk in cached:
                cached.insert(chunk, credit)  # refresh H on hit
            else:
                missing.append(chunk)
        if not missing:
            return SERVE_HIT

        evicted = 0
        need = len(missing) - (self.disk_chunks - len(cached))
        if need > 0:
            exclude = {(video, c) for c in range(c0, c1 + 1)}
            for chunk, h_value in cached.n_smallest(need, exclude=exclude):
                cached.remove(chunk)
                self._inflation = max(self._inflation, h_value)
                evicted += 1
            credit = self._inflation + self.cost_model.fill_cost
        for chunk in missing:
            cached.insert(chunk, credit)
        return serve_response(len(missing), evicted)

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._cached

    def __len__(self) -> int:
        return len(self._cached)

    @property
    def inflation(self) -> float:
        """The current GDS aging value ``L``."""
        return self._inflation
