"""EWMA inter-arrival-time tracking (Section 6, Eqs. 8–9).

Cafe Cache models chunk popularity as an exponentially weighted moving
average (EWMA) of the inter-arrival times (IAT) of requests.  For each
chunk ``x`` the server keeps the previous IAT value ``dt_x`` and the
last access time ``t_x``; on a new request at time ``t``::

    dt_x <- gamma * (t - t_x) + (1 - gamma) * dt_x
    t_x  <- t

and the IAT at any later time ``t'`` is (Eq. 8)::

    IAT_x(t') = gamma * (t' - t_x) + (1 - gamma) * dt_x

Chunks are ordered in the cache by the *virtual timestamp* (Eq. 9)::

    key_x(T0) = T0 - IAT_x(T0)

evaluated at an **arbitrary but fixed** reference timestamp ``T0`` —
Theorem 1's condition.  Expanding, ``key_x(T0) = (1 - gamma) * T0 +
gamma * t_x - (1 - gamma) * dt_x``; the first term is a shared constant,
so this module uses the canonical ``T0 = 0`` form::

    key_x = gamma * t_x - (1 - gamma) * dt_x

Because ``IAT_x(t) - IAT_y(t) = -(key_x - key_y)`` for every ``t`` (the
``gamma * t`` terms cancel), ``key_x < key_y`` iff chunk ``x`` is less
popular (larger IAT) than ``y`` at *any* common evaluation time — which
is exactly what lets keys computed at different insertion times coexist
in one ordered structure.  Keying each chunk at its own insertion time
instead (a tempting misreading of Eq. 9) breaks comparability: the
``(1 - gamma) * t`` terms then differ per chunk and recently re-keyed
chunks would look spuriously popular.

A chunk seen exactly once has no inter-arrival sample yet; its ``dt`` is
``inf`` (infinitely unpopular), and the first real sample replaces it
outright instead of being averaged into infinity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, TypeVar

X = TypeVar("X", bound=Hashable)

__all__ = ["EwmaIat", "IatEstimator", "iat_at", "virtual_key"]

_INF = float("inf")


def iat_at(dt: float, t_last: float, now: float, gamma: float) -> float:
    """Eq. 8: the estimated inter-arrival time of a chunk at time ``now``.

    ``dt`` is the chunk's EWMA IAT state and ``t_last`` its last access
    time.  With ``dt = inf`` (single access so far) the result is inf.
    """
    if math.isinf(dt):
        return _INF
    return gamma * (now - t_last) + (1.0 - gamma) * dt


def virtual_key(dt: float, t_last: float, gamma: float) -> float:
    """Eq. 9 at the fixed reference ``T0 = 0``:
    ``gamma * t_last - (1 - gamma) * dt``.

    Smaller keys mean larger IATs, i.e. less popular chunks; they sit at
    the eviction end of the ordered structure.  Keys computed at any
    point in a chunk's life are mutually comparable (Theorem 1).
    Returns ``-inf`` for a chunk with no IAT sample yet.
    """
    if math.isinf(dt):
        return -_INF
    return gamma * t_last - (1.0 - gamma) * dt


@dataclass(slots=True)
class EwmaIat:
    """Per-chunk EWMA state: previous IAT ``dt`` and last access ``t_last``."""

    dt: float
    t_last: float

    def update(self, now: float, gamma: float) -> None:
        """Fold the access at time ``now`` into the EWMA (Section 6).

        The first inter-arrival sample replaces the ``inf`` placeholder.
        """
        sample = now - self.t_last
        if math.isinf(self.dt):
            self.dt = sample
        else:
            self.dt = gamma * sample + (1.0 - gamma) * self.dt
        self.t_last = now

    def iat(self, now: float, gamma: float) -> float:
        """Eq. 8 evaluated for this chunk at time ``now``."""
        return iat_at(self.dt, self.t_last, now, gamma)

    def key(self, gamma: float) -> float:
        """Eq. 9 ordering key for this chunk (fixed reference T0=0)."""
        return virtual_key(self.dt, self.t_last, gamma)


class IatEstimator(Dict[X, EwmaIat]):
    """A table of per-item EWMA IAT states with a shared ``gamma``.

    This is the popularity-tracking half of Cafe Cache, kept for cached
    *and* recently-evicted ("ghost") chunks so that a chunk evicted and
    re-requested still has history — without it every miss would look
    like a first-seen chunk and Cafe would never re-admit anything.
    Ghost-entry garbage collection lives in the cache, which knows the
    cache age (Section 5's "historic data ... is regularly cleaned up").
    """

    def __init__(self, gamma: float) -> None:
        super().__init__()
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.gamma = gamma

    def record(self, item: X, now: float) -> EwmaIat:
        """Record an access of ``item`` at ``now``; returns its state."""
        state = self.get(item)
        if state is None:
            state = EwmaIat(dt=_INF, t_last=now)
            self[item] = state
        else:
            state.update(now, self.gamma)
        return state

    def iat(self, item: X, now: float) -> float:
        """Eq. 8 for ``item`` at ``now``; ``inf`` if never seen twice."""
        state = self.get(item)
        if state is None:
            return _INF
        return state.iat(now, self.gamma)

    def key(self, item: X) -> float:
        """Eq. 9 ordering key for ``item``; ``-inf`` if unseen."""
        state = self.get(item)
        if state is None:
            return -_INF
        return state.key(self.gamma)
