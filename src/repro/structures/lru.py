"""Access-recency list: the LRU building block of Section 5.

The paper describes the structure shared by the xLRU disk cache and the
video popularity tracker as "a linked list maintaining access times in
sorted order, and a hash map that maps keys to list entries", enabling:

* O(1) lookup of the access time of a key,
* O(1) retrieval of the cache age (time since the oldest access),
* O(1) removal of the oldest entries,
* O(1) insertion of entries at the list head.

Insertion with an access time smaller than the current head is not
possible (access times only move forward), which is what lets a plain
recency-ordered list stand in for a priority queue.

This implementation keeps the same asymptotics using an insertion-order
preserving ``dict``: Python dicts iterate in insertion order, and
re-inserting a key after deleting it moves it to the back, which is the
"list head" here.  ``next(iter(d))`` is the oldest (least recently used)
entry.
"""

from __future__ import annotations

from itertools import islice
from typing import Generic, Hashable, Iterator, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)

__all__ = ["AccessRecencyList"]


class AccessRecencyList(Generic[K]):
    """Recency-ordered map of keys to access times.

    Entries are ordered from least recently to most recently accessed.
    Access times must be non-decreasing across :meth:`touch` calls; the
    structure enforces this because its correctness (recency order ==
    access-time order) depends on it.
    """

    __slots__ = ("_entries", "_max_time")

    def __init__(self) -> None:
        self._entries: dict[K, float] = {}
        self._max_time: float = float("-inf")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        """Iterate keys from least to most recently accessed."""
        return iter(self._entries)

    def touch(self, key: K, now: float) -> None:
        """Record an access of ``key`` at time ``now`` (moves it to the head).

        Raises ``ValueError`` if ``now`` is smaller than the most recent
        access time already recorded, since that would break the
        recency-order invariant.
        """
        if now < self._max_time:
            raise ValueError(
                f"access time {now} precedes current head time "
                f"{self._max_time}; access times must be non-decreasing"
            )
        self._max_time = now
        entries = self._entries
        entries.pop(key, None)  # one hash probe instead of contains+del
        entries[key] = now

    def touch_all(self, keys, now: float) -> None:
        """Record an access of every key in ``keys`` at time ``now``.

        The grouped form of :meth:`touch` for the batched decision
        kernels: one guard check and one bound method per *run* of
        touches instead of per key.  Keys end up most-recent in
        iteration order, exactly as successive ``touch(key, now)``
        calls would leave them.
        """
        if now < self._max_time:
            raise ValueError(
                f"access time {now} precedes current head time "
                f"{self._max_time}; access times must be non-decreasing"
            )
        self._max_time = now
        entries = self._entries
        pop = entries.pop
        for key in keys:
            pop(key, None)
            entries[key] = now

    def pop_oldest_n(self, n: int) -> list[Tuple[K, float]]:
        """Remove and return the ``n`` least recently used entries.

        The epoch-batched eviction primitive: one call per eviction run
        rather than one :meth:`pop_oldest` per victim.  Returns the
        evicted ``(key, access_time)`` pairs oldest first; fewer than
        ``n`` when the list runs out.
        """
        entries = self._entries
        if n >= len(entries):
            evicted = list(entries.items())
            entries.clear()
            return evicted
        victims = list(islice(iter(entries), n))
        pop = entries.pop
        return [(key, pop(key)) for key in victims]

    def raw_entries(self) -> dict:
        """The backing recency dict, for batched cache hot paths.

        Callers own the invariants while mutating it directly: access
        times must stay non-decreasing, and re-recording a key must
        ``pop`` it first so it moves to the back (exactly what
        :meth:`touch` does).  After a bulk update, call
        :meth:`advance_time` with the final access time so the guard in
        :meth:`touch` stays correct for later scalar use.
        """
        return self._entries

    def advance_time(self, now: float) -> None:
        """Fast-forward the recency guard after a bulk update at ``now``."""
        if now < self._max_time:
            raise ValueError(
                f"access time {now} precedes current head time "
                f"{self._max_time}; access times must be non-decreasing"
            )
        self._max_time = now

    def last_access(self, key: K) -> Optional[float]:
        """Return the last access time of ``key``, or None if untracked."""
        return self._entries.get(key)

    def oldest(self) -> Tuple[K, float]:
        """Return ``(key, access_time)`` of the least recently used entry.

        Raises ``KeyError`` when empty.
        """
        if not self._entries:
            raise KeyError("oldest() on empty AccessRecencyList")
        key = next(iter(self._entries))
        return key, self._entries[key]

    def pop_oldest(self) -> Tuple[K, float]:
        """Remove and return the least recently used ``(key, access_time)``."""
        key, t = self.oldest()
        del self._entries[key]
        return key, t

    def remove(self, key: K) -> float:
        """Remove ``key`` and return its access time.

        Raises ``KeyError`` if the key is not present.
        """
        t = self._entries[key]
        del self._entries[key]
        return t

    def discard(self, key: K) -> bool:
        """Remove ``key`` if present; return whether it was present."""
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    def cache_age(self, now: float) -> float:
        """Time elapsed since the oldest tracked access.

        Returns ``inf`` when empty: an empty cache has unbounded age, so
        every admission test based on "younger than the cache age"
        passes — matching the warm-up behaviour of Section 5 where the
        disk is still filling.
        """
        if not self._entries:
            return float("inf")
        _, oldest_t = self.oldest()
        return now - oldest_t

    def evict_older_than(self, cutoff: float) -> list[Tuple[K, float]]:
        """Drop all entries whose access time is strictly below ``cutoff``.

        Returns the evicted ``(key, access_time)`` pairs, oldest first.
        This is the "historic data ... is regularly cleaned up" operation
        of Section 5 for the popularity tracker.
        """
        evicted: list[Tuple[K, float]] = []
        while self._entries:
            key, t = self.oldest()
            if t >= cutoff:
                break
            del self._entries[key]
            evicted.append((key, t))
        return evicted

    def items(self) -> Iterator[Tuple[K, float]]:
        """Iterate ``(key, access_time)`` pairs, least recent first."""
        return iter(self._entries.items())
