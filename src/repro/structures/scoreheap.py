"""Lazy-deletion binary heap with TreapMap's observable semantics.

The ordered structures of the decision kernels (Cafe's virtual-timestamp
set, LFU's frequency set, LRU-K / GDS credit sets) were built on
:class:`~repro.structures.treap.TreapMap`, whose ``(score, seq)``
composite key makes eviction order deterministic for a fixed insertion
sequence — a property the verification oracles replicate and therefore
part of the replayable spec.  The treap pays for that order with
pure-Python ``_split``/``_merge`` recursion on every insert, which
profiles as the dominant cost of the packed replay lane for the
treap-backed caches.

:class:`ScoreHeap` keeps the *exact* observable contract — the same
``(score, seq)`` total order, the same sequence-number assignment per
:meth:`insert`, the same API — on top of :mod:`heapq` (C-implemented)
with lazy deletion:

* ``insert``/``remove``/``discard`` are one dict operation plus at most
  one ``heappush``; superseded heap entries go *stale* and are dropped
  when they surface at the top or during compaction;
* ``min_item``/``pop_min`` pop stale entries off the top until a live
  one surfaces (amortized O(log n));
* ``n_smallest`` pops live entries into a buffer and pushes them back,
  discarding any stale entries it crosses;
* when stale entries outnumber live ones the heap is rebuilt from the
  live index (amortized O(1) per mutation).

Because every composite key is unique, heap order never compares items
themselves, so unhashable-score pathologies cannot arise and the order
is exactly TreapMap's.  The ``seed`` argument is accepted for drop-in
compatibility; no randomness is needed (heap shape is not observable).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Generic, Hashable, Iterator, Optional, Tuple, TypeVar

T = TypeVar("T", bound=Hashable)

__all__ = ["ScoreHeap"]


class ScoreHeap(Generic[T]):
    """Map of hashable items to float scores, ordered by ascending
    ``(score, insertion sequence)`` — observably identical to
    :class:`~repro.structures.treap.TreapMap`.
    """

    __slots__ = ("_heap", "_index", "_seq", "_stale")

    def __init__(self, seed: Optional[int] = 0) -> None:
        # (score, seq, item) entries; an entry is live iff the index
        # still maps item -> (score, seq).
        self._heap: list[Tuple[float, int, T]] = []
        # item -> (score, seq) composite key currently live
        self._index: dict[T, Tuple[float, int]] = {}
        self._seq = 0
        self._stale = 0

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, item: T) -> bool:
        return item in self._index

    def score(self, item: T) -> Optional[float]:
        """Return the item's current score, or None if absent."""
        entry = self._index.get(item)
        return entry[0] if entry is not None else None

    def raw_index(self) -> dict:
        """The live ``item -> (score, seq)`` key dict, for batched
        read-only membership and score probes in cache hot paths.

        Callers must not mutate it — all mutations go through
        :meth:`insert`/:meth:`remove`/:meth:`discard`.  The dict object
        itself is stable across every operation (compaction rebuilds
        only the heap), so a reference hoisted once per block stays
        valid for the whole block.
        """
        return self._index

    def insert(self, item: T, score: float) -> None:
        """Insert ``item`` with ``score``, replacing any previous entry."""
        index = self._index
        if item in index:
            self._stale += 1
        seq = self._seq
        self._seq = seq + 1
        index[item] = (score, seq)
        heappush(self._heap, (score, seq, item))
        if self._stale > len(index):
            self._compact()

    def remove(self, item: T) -> float:
        """Remove ``item`` and return its score. Raises KeyError if absent."""
        key = self._index.pop(item)
        self._stale += 1
        if self._stale > len(self._index):
            self._compact()
        return key[0]

    def discard(self, item: T) -> bool:
        """Remove ``item`` if present; return whether it was present."""
        if item not in self._index:
            return False
        self.remove(item)
        return True

    def _compact(self) -> None:
        """Rebuild the heap from the live index, dropping stale entries."""
        self._heap = [
            (score, seq, item) for item, (score, seq) in self._index.items()
        ]
        heapify(self._heap)
        self._stale = 0

    def _prune_top(self) -> None:
        """Pop stale entries until the top of the heap is live."""
        heap = self._heap
        index = self._index
        while heap:
            score, seq, item = heap[0]
            if index.get(item) == (score, seq):
                return
            heappop(heap)
            self._stale -= 1

    def min_item(self) -> Tuple[T, float]:
        """Return ``(item, score)`` with the smallest score.

        Raises KeyError when empty.
        """
        if not self._index:
            raise KeyError("min_item() on empty ScoreHeap")
        self._prune_top()
        score, _seq, item = self._heap[0]
        return item, score

    def pop_min(self) -> Tuple[T, float]:
        """Remove and return the ``(item, score)`` with the smallest score."""
        item, score = self.min_item()
        del self._index[item]
        heappop(self._heap)
        return item, score

    def n_smallest(self, n: int, exclude: Optional[set] = None) -> list[Tuple[T, float]]:
        """Return up to ``n`` ``(item, score)`` pairs with the smallest
        scores, skipping items in ``exclude``, without removing them.
        """
        if n <= 0:
            return []
        out: list[Tuple[T, float]] = []
        taken: list[Tuple[float, int, T]] = []
        heap = self._heap
        index = self._index
        while heap and len(out) < n:
            entry = heappop(heap)
            score, seq, item = entry
            if index.get(item) != (score, seq):
                self._stale -= 1
                continue
            taken.append(entry)
            if exclude is None or item not in exclude:
                out.append((item, score))
        for entry in taken:
            heappush(heap, entry)
        return out

    def pop_n_smallest(
        self, n: int, exclude: Optional[set] = None
    ) -> list[Tuple[T, float]]:
        """Remove and return up to ``n`` ``(item, score)`` pairs with the
        smallest scores, skipping (and keeping) items in ``exclude``.

        The fused form of an eviction run — ``n_smallest`` followed by
        ``remove`` of every returned item — selecting exactly the same
        victims in the same ``(score, seq)`` order, without pushing the
        victims back only to re-surface them as stale entries.
        """
        if n <= 0:
            return []
        out: list[Tuple[T, float]] = []
        kept: list[Tuple[float, int, T]] = []
        heap = self._heap
        index = self._index
        while heap and len(out) < n:
            entry = heappop(heap)
            score, seq, item = entry
            if index.get(item) != (score, seq):
                self._stale -= 1
                continue
            if exclude is not None and item in exclude:
                kept.append(entry)
                continue
            del index[item]
            out.append((item, score))
        for entry in kept:
            heappush(heap, entry)
        return out

    def items_ascending(self) -> Iterator[Tuple[T, float]]:
        """Iterate all ``(item, score)`` pairs in ascending score order."""
        for score, _seq, item in sorted(
            (score, seq, item) for item, (score, seq) in self._index.items()
        ):
            yield item, score

    def check_invariants(self) -> None:
        """Validate heap/index consistency (for tests)."""
        live = 0
        index = self._index
        seen: set = set()
        for score, seq, item in self._heap:
            if index.get(item) == (score, seq):
                live += 1
                assert item not in seen, "duplicate live entry"
                seen.add(item)
            assert seq < self._seq, "sequence counter behind heap entry"
        assert live == len(index), "index/heap live-entry mismatch"
        assert len(self._heap) == len(index) + self._stale, "stale count drift"
