"""Ordered item-to-score map built on a treap, as used by Cafe Cache.

Section 6: Cafe Cache "replaces the linked list in xLRU Cache with a
binary tree set" because chunks are re-inserted with virtual-timestamp
keys that are *not* necessarily larger than all existing keys.  The
structure must support:

* insert an item with an arbitrary (float) key,
* look up an item's key through an accompanying hash map,
* retrieve/remove the entries with the smallest keys (least popular).

A treap (randomized balanced BST) gives O(log n) expected insert/remove
and O(log n) min retrieval; items are totally ordered by
``(key, sequence_number)`` so duplicate keys are fine and the order is
deterministic for a fixed insertion sequence and seed.
"""

from __future__ import annotations

import random
from typing import Generic, Hashable, Iterator, Optional, Tuple, TypeVar

T = TypeVar("T", bound=Hashable)

__all__ = ["TreapMap"]


class _Node:
    __slots__ = ("key", "item", "priority", "left", "right")

    def __init__(self, key: Tuple[float, int], item: object, priority: float):
        self.key = key
        self.item = item
        self.priority = priority
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None


def _merge(a: Optional[_Node], b: Optional[_Node]) -> Optional[_Node]:
    """Merge two treaps where every key in ``a`` < every key in ``b``."""
    if a is None:
        return b
    if b is None:
        return a
    if a.priority > b.priority:
        a.right = _merge(a.right, b)
        return a
    b.left = _merge(a, b.left)
    return b


def _split(
    node: Optional[_Node], key: Tuple[float, int]
) -> Tuple[Optional[_Node], Optional[_Node]]:
    """Split into (keys < key, keys >= key)."""
    if node is None:
        return None, None
    if node.key < key:
        left, right = _split(node.right, key)
        node.right = left
        return node, right
    left, right = _split(node.left, key)
    node.left = right
    return left, node


class TreapMap(Generic[T]):
    """Map of hashable items to float scores, ordered by ascending score.

    The smallest-scored items are the "least popular" end.  Each item
    appears at most once; re-inserting an item replaces its score.
    """

    __slots__ = ("_root", "_index", "_rng", "_seq")

    def __init__(self, seed: Optional[int] = 0) -> None:
        self._root: Optional[_Node] = None
        # item -> (score, seq) composite key currently in the tree
        self._index: dict[T, Tuple[float, int]] = {}
        self._rng = random.Random(seed)
        self._seq = 0

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, item: T) -> bool:
        return item in self._index

    def score(self, item: T) -> Optional[float]:
        """Return the item's current score, or None if absent."""
        entry = self._index.get(item)
        return entry[0] if entry is not None else None

    def insert(self, item: T, score: float) -> None:
        """Insert ``item`` with ``score``, replacing any previous entry."""
        if item in self._index:
            self._remove_key(self._index[item])
        key = (score, self._seq)
        self._seq += 1
        self._index[item] = key
        node = _Node(key, item, self._rng.random())
        left, right = _split(self._root, key)
        self._root = _merge(_merge(left, node), right)

    def remove(self, item: T) -> float:
        """Remove ``item`` and return its score. Raises KeyError if absent."""
        key = self._index.pop(item)
        self._remove_key(key)
        return key[0]

    def discard(self, item: T) -> bool:
        """Remove ``item`` if present; return whether it was present."""
        if item not in self._index:
            return False
        self.remove(item)
        return True

    def _remove_key(self, key: Tuple[float, int]) -> None:
        left, rest = _split(self._root, key)
        # Split off exactly the node with this key: keys are unique
        # composites, so the next key up is (key[0], key[1] + 1).
        mid, right = _split(rest, (key[0], key[1] + 1))
        assert mid is not None and mid.left is None and mid.right is None
        self._root = _merge(left, right)

    def min_item(self) -> Tuple[T, float]:
        """Return ``(item, score)`` with the smallest score.

        Raises KeyError when empty.
        """
        if self._root is None:
            raise KeyError("min_item() on empty TreapMap")
        node = self._root
        while node.left is not None:
            node = node.left
        return node.item, node.key[0]  # type: ignore[return-value]

    def pop_min(self) -> Tuple[T, float]:
        """Remove and return the ``(item, score)`` with the smallest score."""
        item, score = self.min_item()
        self.remove(item)
        return item, score

    def n_smallest(self, n: int, exclude: Optional[set] = None) -> list[Tuple[T, float]]:
        """Return up to ``n`` ``(item, score)`` pairs with the smallest
        scores, skipping items in ``exclude``, without removing them.

        Cafe Cache uses this to pick eviction candidates S'' while
        excluding the chunks of the request currently being considered.
        """
        if n <= 0:
            return []
        out: list[Tuple[T, float]] = []
        # Iterative in-order traversal, stop once we have n.
        stack: list[_Node] = []
        node = self._root
        while (node is not None or stack) and len(out) < n:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            if exclude is None or node.item not in exclude:
                out.append((node.item, node.key[0]))  # type: ignore[arg-type]
            node = node.right
        return out

    def items_ascending(self) -> Iterator[Tuple[T, float]]:
        """Iterate all ``(item, score)`` pairs in ascending score order."""
        stack: list[_Node] = []
        node = self._root
        while node is not None or stack:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.item, node.key[0]  # type: ignore[misc]
            node = node.right

    def check_invariants(self) -> None:
        """Validate BST-order and heap-priority invariants (for tests)."""

        def walk(node: Optional[_Node], lo, hi) -> int:
            if node is None:
                return 0
            assert lo is None or node.key > lo, "BST order violated"
            assert hi is None or node.key < hi, "BST order violated"
            for child in (node.left, node.right):
                if child is not None:
                    assert child.priority <= node.priority, "heap violated"
            return 1 + walk(node.left, lo, node.key) + walk(node.right, node.key, hi)

        count = walk(self._root, None, None)
        assert count == len(self._index), "index/tree size mismatch"
