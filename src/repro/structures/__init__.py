"""Low-level data structures backing the caching algorithms.

The paper (Sections 5 and 6) prescribes two container shapes:

* An access-recency list — a linked list of entries in sorted access-time
  order plus a hash map for O(1) lookup — used by the xLRU popularity
  tracker and the xLRU disk cache (:class:`AccessRecencyList`).
* A binary-tree set ordered by virtual-timestamp keys plus a hash map,
  used by Cafe Cache where re-insertions happen at arbitrary key
  positions (:class:`TreapMap`, and the observably identical
  heap-backed :class:`ScoreHeap` the hot caches use).

It also prescribes per-chunk exponentially weighted moving-average
inter-arrival-time tracking (Eq. 8) with the virtual-timestamp key of
Eq. 9 (:mod:`repro.structures.ewma`).
"""

from repro.structures.ewma import (
    EwmaIat,
    IatEstimator,
    iat_at,
    virtual_key,
)
from repro.structures.lru import AccessRecencyList
from repro.structures.scoreheap import ScoreHeap
from repro.structures.treap import TreapMap

__all__ = [
    "AccessRecencyList",
    "TreapMap",
    "ScoreHeap",
    "EwmaIat",
    "IatEstimator",
    "iat_at",
    "virtual_key",
]
