"""Log-bucketed histogram sketch: bounded memory, mergeable, quantiles.

Telemetry needs whole-run distributions (eviction ages, residence
times, decision margins) without storing every sample.  A
:class:`HistogramSketch` maps each value to a geometric bucket —
``floor(log(|v|) / log(growth))``, signed, with an exact bucket for
zero — so memory is bounded by the dynamic range (a few hundred
buckets for anything the simulator produces) while any quantile is
recoverable to within a factor of ``growth`` (relative error
``(growth - 1) / 2`` at the default 1.15, i.e. ~7.5%).

Sketches merge exactly (bucket-wise addition), which is how per-worker
telemetry folds back into the parent after a parallel sweep.  The
dict form (:meth:`to_dict` / :meth:`from_dict`) round-trips through
the JSONL export.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

__all__ = ["HistogramSketch"]

#: Default bucket growth factor: ~7.5% worst-case relative quantile error.
DEFAULT_GROWTH = 1.15


class HistogramSketch:
    """A mergeable geometric-bucket histogram of finite float samples."""

    __slots__ = (
        "growth",
        "_inv_log_growth",
        "_pos",
        "_neg",
        "_zeros",
        "count",
        "total",
        "min",
        "max",
    )

    def __init__(self, growth: float = DEFAULT_GROWTH) -> None:
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        self.growth = growth
        self._inv_log_growth = 1.0 / math.log(growth)
        #: bucket index -> sample count, for positive / negative values
        self._pos: Dict[int, int] = {}
        self._neg: Dict[int, int] = {}
        self._zeros = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording -----------------------------------------------------------

    def add(self, value: float, n: int = 1) -> None:
        """Fold ``n`` observations of ``value`` into the sketch.

        Non-finite values are rejected — the caller decides whether an
        unbounded margin is a separate counter or simply dropped;
        silently folding ``inf`` into a log bucket would corrupt
        quantiles.
        """
        if not math.isfinite(value):
            raise ValueError(f"sketch values must be finite, got {value}")
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if value > 0.0:
            index = math.floor(math.log(value) * self._inv_log_growth)
            self._pos[index] = self._pos.get(index, 0) + n
        elif value < 0.0:
            index = math.floor(math.log(-value) * self._inv_log_growth)
            self._neg[index] = self._neg.get(index, 0) + n
        else:
            self._zeros += n
        self.count += n
        self.total += value * n
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    # -- queries -------------------------------------------------------------

    @property
    def mean(self) -> float:
        """Exact sample mean (NaN when empty)."""
        if self.count == 0:
            return math.nan
        return self.total / self.count

    def _bucket_values(self) -> List[tuple]:
        """``(representative_value, count)`` pairs in ascending order.

        The representative of bucket ``i`` is the geometric midpoint
        ``growth ** (i + 0.5)``, clamped to the exact observed min/max
        so quantile answers never leave the sampled range.
        """
        out: List[tuple] = []
        for index in sorted(self._neg, reverse=True):
            out.append((-(self.growth ** (index + 0.5)), self._neg[index]))
        if self._zeros:
            out.append((0.0, self._zeros))
        for index in sorted(self._pos):
            out.append((self.growth ** (index + 0.5), self._pos[index]))
        return out

    def quantile(self, q: float) -> float:
        """The approximate ``q``-quantile (NaN when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        rank = q * (self.count - 1)
        seen = 0
        for value, n in self._bucket_values():
            seen += n
            if seen > rank:
                return min(max(value, self.min), self.max)
        return self.max

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        return [self.quantile(q) for q in qs]

    # -- composition ---------------------------------------------------------

    def merge(self, other: "HistogramSketch") -> None:
        """Fold ``other`` into this sketch (exact: bucket-wise addition)."""
        if other.growth != self.growth:
            raise ValueError(
                f"cannot merge sketches with different growth factors "
                f"({self.growth} vs {other.growth})"
            )
        for index, n in other._pos.items():
            self._pos[index] = self._pos.get(index, 0) + n
        for index, n in other._neg.items():
            self._neg[index] = self._neg.get(index, 0) + n
        self._zeros += other._zeros
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form (bucket indexes become string keys)."""
        out: dict = {
            "growth": self.growth,
            "count": self.count,
            "total": self.total,
            "zeros": self._zeros,
            "pos": {str(k): v for k, v in sorted(self._pos.items())},
            "neg": {str(k): v for k, v in sorted(self._neg.items())},
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "HistogramSketch":
        sketch = cls(growth=data["growth"])
        sketch._pos = {int(k): int(v) for k, v in data.get("pos", {}).items()}
        sketch._neg = {int(k): int(v) for k, v in data.get("neg", {}).items()}
        sketch._zeros = int(data.get("zeros", 0))
        sketch.count = int(data["count"])
        sketch.total = float(data.get("total", 0.0))
        sketch.min = float(data.get("min", math.inf))
        sketch.max = float(data.get("max", -math.inf))
        return sketch

    def summary(self) -> dict:
        """Headline statistics for reports: count, mean, p50/p90/p99."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "max": self.max,
        }

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"HistogramSketch(count={self.count}, "
            f"buckets={len(self._pos) + len(self._neg) + bool(self._zeros)})"
        )
