"""Run-level telemetry: lanes, snapshots, and worker merging.

A :class:`Telemetry` object is threaded through the engine
(:class:`~repro.sim.engine.MultiReplay` and the
:class:`~repro.sim.schedule.SweepScheduler`): each cache lane gets a
:class:`LaneTelemetry` holding a metric registry, an optionally
attached :mod:`probe <repro.obs.probes>`, and a time series of
periodic snapshots (disk occupancy plus probe gauges) sampled on a
request cadence during replay.

Parallel sweeps run each group in a worker process: the worker builds
its own lane telemetry (probes and registries are plain picklable
data), ships it back inside each
:class:`~repro.sim.engine.SimulationResult`, and the parent calls
:meth:`Telemetry.adopt` to fold the lanes into the run-level object —
so one ``Telemetry`` describes the whole sweep regardless of the
execution strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.obs.events import EventLog
from repro.obs.probes import CacheProbe, probe_for
from repro.obs.registry import MetricRegistry
from repro.obs.sketch import DEFAULT_GROWTH

__all__ = ["LaneTelemetry", "Telemetry", "TelemetryOptions"]

#: Default requests-per-lane between snapshots.  The packed engine lane
#: samples at block boundaries, so its effective cadence is
#: ``max(snapshot_every, PACKED_BLOCK)``.
DEFAULT_SNAPSHOT_EVERY = 8192


@dataclass(frozen=True)
class TelemetryOptions:
    """Picklable knobs shared by the parent and its sweep workers."""

    #: attach per-cache probes (eviction/admission/margin capture);
    #: snapshots and counters stay on either way
    probes: bool = True
    #: requests between periodic lane snapshots (0 disables sampling)
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY
    #: histogram sketch bucket growth factor
    histogram_growth: float = DEFAULT_GROWTH
    #: hard cap on retained snapshots per lane (oldest are thinned 2:1)
    max_snapshots: int = 4096

    def __post_init__(self) -> None:
        if self.snapshot_every < 0:
            raise ValueError(f"snapshot_every must be >= 0, got {self.snapshot_every}")
        if self.max_snapshots < 2:
            raise ValueError(f"max_snapshots must be >= 2, got {self.max_snapshots}")


class LaneTelemetry:
    """Telemetry of one cache lane (one sweep cell / one replay)."""

    def __init__(
        self,
        key: str,
        algorithm: str = "",
        options: Optional[TelemetryOptions] = None,
    ) -> None:
        self.key = key
        self.algorithm = algorithm
        self.options = options if options is not None else TelemetryOptions()
        self.registry = MetricRegistry(histogram_growth=self.options.histogram_growth)
        self.probe: Optional[CacheProbe] = None
        #: periodic snapshots: {"t", "done", "occupancy", "disk_used", ...}
        self.snapshots: List[dict] = []
        #: end-of-run traffic summaries (set by the engine)
        self.totals: Optional[dict] = None
        self.steady: Optional[dict] = None
        self.num_requests = 0

    def attach(self, cache) -> None:
        """Create the lane's probe and hook it onto ``cache``."""
        if not self.algorithm:
            self.algorithm = getattr(cache, "name", "")
        if self.options.probes and hasattr(cache, "probe"):
            self.probe = probe_for(cache, self.registry)
            cache.probe = self.probe

    def sample(self, t: float, cache, done: int) -> None:
        """Record one periodic snapshot at simulation time ``t``.

        ``done`` is the number of requests replayed so far.  Reads are
        pull-based and O(1): disk occupancy plus whatever cheap gauges
        the probe exposes.
        """
        snapshot = {
            "t": t,
            "done": done,
            "occupancy": len(cache),
            "disk_used": cache.disk_used_fraction,
        }
        if self.probe is not None:
            snapshot.update(self.probe.snapshot_gauges(cache))
        self.snapshots.append(snapshot)
        if len(self.snapshots) > self.options.max_snapshots:
            # Thin 2:1 (keeping the newest point) instead of dropping
            # the tail: long replays keep whole-run coverage at half
            # resolution rather than losing their oldest history.
            self.snapshots = self.snapshots[::2] + self.snapshots[-1:]

    def finish(self, cache, totals: dict, steady: dict, num_requests: int) -> None:
        """Seal the lane at end of run: final gauges and summaries."""
        self.registry.gauge("occupancy", len(cache))
        self.registry.gauge("disk_used", cache.disk_used_fraction)
        self.totals = totals
        self.steady = steady
        self.num_requests = num_requests

    def to_dict(self) -> dict:
        """JSON-safe lane summary for the JSONL export."""
        out: dict = {
            "lane": self.key,
            "algorithm": self.algorithm,
            "num_requests": self.num_requests,
            "registry": self.registry.to_dict(),
        }
        if self.totals is not None:
            out["totals"] = self.totals
        if self.steady is not None:
            out["steady"] = self.steady
        return out


class Telemetry:
    """Run-level telemetry container: lanes + events + run metadata."""

    def __init__(
        self,
        options: Optional[TelemetryOptions] = None,
        events: Optional[EventLog] = None,
        meta: Optional[Mapping] = None,
    ) -> None:
        self.options = options if options is not None else TelemetryOptions()
        self.events = events if events is not None else EventLog()
        self.lanes: Dict[str, LaneTelemetry] = {}
        #: free-form run metadata (trace path, scale, CLI args, ...)
        self.meta: dict = dict(meta) if meta else {}

    def lane(self, key: str, cache=None) -> LaneTelemetry:
        """The lane for ``key``, created (and attached) on first use."""
        lane = self.lanes.get(key)
        if lane is None:
            lane = LaneTelemetry(key, options=self.options)
            self.lanes[key] = lane
            if cache is not None:
                lane.attach(cache)
        return lane

    def adopt(self, results: Mapping) -> int:
        """Fold lane telemetry carried by ``results`` into this object.

        ``results`` is a ``{key: SimulationResult}`` mapping whose
        values may carry a ``telemetry`` lane (worker processes attach
        them before shipping results back).  A lane that already exists
        under the same key is replaced — worker lanes are authoritative
        for their cell.  Returns the number of lanes adopted.
        """
        adopted = 0
        for key, result in results.items():
            lane = getattr(result, "telemetry", None)
            if lane is not None:
                self.lanes[key] = lane
                adopted += 1
        return adopted

    def snapshot_count(self) -> int:
        return sum(len(lane.snapshots) for lane in self.lanes.values())

    def describe(self) -> str:
        return (
            f"telemetry: {len(self.lanes)} lane(s), "
            f"{self.snapshot_count()} snapshot(s), "
            f"{len(self.events)} event(s)"
        )
