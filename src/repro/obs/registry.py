"""Metric registry: named counters, gauges, timers and histograms.

One :class:`MetricRegistry` backs each telemetry lane.  The design
constraints come from the engine's hot path and the sweep executor:

* **cheap when hot** — ``count``/``observe`` are a dict upsert; probes
  cache bound methods so the per-event cost is one call;
* **mergeable** — registries from worker processes fold into the
  parent's exactly (integer/float addition, bucket-wise histogram
  merge, per-stage timer accumulation);
* **serializable** — :meth:`to_dict` / :meth:`from_dict` round-trip
  through the JSONL export.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.obs.sketch import DEFAULT_GROWTH, HistogramSketch
from repro.sim.instrumentation import StageTimer

__all__ = ["MetricRegistry"]


class MetricRegistry:
    """Mutable collection of named metrics for one telemetry lane."""

    def __init__(self, histogram_growth: float = DEFAULT_GROWTH) -> None:
        self.histogram_growth = histogram_growth
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramSketch] = {}
        self._timer = StageTimer()

    # -- recording -----------------------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        self.gauges[name] = value

    def histogram(self, name: str) -> HistogramSketch:
        """The sketch behind ``name``, created on first use."""
        sketch = self.histograms.get(name)
        if sketch is None:
            sketch = HistogramSketch(growth=self.histogram_growth)
            self.histograms[name] = sketch
        return sketch

    def observe(self, name: str, value: float) -> None:
        """Fold one sample into histogram ``name``."""
        self.histogram(name).add(value)

    def timer(self, name: str, items: int = 0) -> Iterator[None]:
        """Context manager accumulating wall time under stage ``name``."""
        return self._timer.stage(name, items)

    def add_time(self, name: str, seconds: float, items: int = 0) -> None:
        self._timer.add(name, seconds, items)

    # -- queries -------------------------------------------------------------

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    def rate(self, numerator: str, *denominators: str) -> Optional[float]:
        """``numerator / sum(denominators)`` or None when undefined.

        Convenience for derived health metrics like the Cafe
        IAT-fallback rate: ``rate("iat.video", "iat.own", "iat.video",
        "iat.cold")``.
        """
        denominator = sum(self.counters.get(name, 0) for name in denominators)
        if denominator == 0:
            return None
        return self.counters.get(numerator, 0) / denominator

    # -- composition ---------------------------------------------------------

    def merge(self, other: "MetricRegistry") -> None:
        """Fold ``other`` into this registry (exact)."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        # Latest-wins is meaningless across processes; keep the max so a
        # merged gauge reports the high-water mark.
        for name, value in other.gauges.items():
            if name not in self.gauges or value > self.gauges[name]:
                self.gauges[name] = value
        for name, sketch in other.histograms.items():
            self.histogram(name).merge(sketch)
        for timing in other._timer.timings():
            self._timer.add(timing.name, timing.seconds, timing.items)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: sketch.to_dict()
                for name, sketch in self.histograms.items()
            },
            "timers": [timing.to_dict() for timing in self._timer.timings()],
        }

    @classmethod
    def from_merged(cls, payloads) -> "MetricRegistry":
        """One registry folding several ``to_dict`` payloads exactly.

        The cross-process merge primitive: counters and timers sum,
        gauges keep their high-water mark, histogram sketches merge
        bucket-wise (no quantile approximation error is introduced by
        the merge itself).  Used by the serve router to fold per-shard
        SLO registries and by the fleet telemetry merger.
        """
        merged = cls()
        for payload in payloads:
            merged.merge(cls.from_dict(payload))
        return merged

    @classmethod
    def from_dict(cls, data: dict) -> "MetricRegistry":
        registry = cls()
        registry.counters = dict(data.get("counters", {}))
        registry.gauges = dict(data.get("gauges", {}))
        registry.histograms = {
            name: HistogramSketch.from_dict(payload)
            for name, payload in data.get("histograms", {}).items()
        }
        for timing in data.get("timers", []):
            registry._timer.add(
                timing["name"], timing["seconds"], timing.get("items", 0)
            )
        return registry

    def __repr__(self) -> str:
        return (
            f"MetricRegistry({len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, {len(self.histograms)} histograms)"
        )
