"""Versioned JSONL telemetry files: export, load, schema validation.

One telemetry file describes one run.  Line 1 is always the ``meta``
record (schema name + version + run metadata); every following line is
a self-describing record with a ``kind`` field:

* ``event``    — one :class:`~repro.obs.events.TelemetryEvent`;
* ``snapshot`` — one periodic lane sample (sim time, occupancy, probe
  gauges);
* ``lane``     — one end-of-run lane summary (counters, histograms,
  traffic totals);
* ``report``   — one :class:`~repro.sim.instrumentation.RunReport`.

The format is append-friendly and newline-delimited so CI jobs can
``grep``/``jq`` artifacts without a reader, while
:func:`read_telemetry` gives structured access and
:func:`validate_telemetry` checks any file against the schema (CI runs
it on every push).  ``.gz`` paths are transparently compressed.
"""

from __future__ import annotations

import gzip
import io
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.telemetry import Telemetry

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "TelemetryFile",
    "read_telemetry",
    "validate_telemetry",
    "write_telemetry",
]

SCHEMA_NAME = "repro.obs"
SCHEMA_VERSION = 1

#: Record kinds a conforming file may contain, and the fields each must
#: carry.  ``meta`` is validated separately (it must also come first).
_REQUIRED_FIELDS: Dict[str, tuple] = {
    "meta": ("schema", "version", "created_unix"),
    "event": ("wall", "level", "tag"),
    "snapshot": ("lane", "t", "done", "occupancy", "disk_used"),
    "lane": ("lane", "algorithm", "registry"),
    "report": ("engine", "mode", "wall_seconds"),
}


def _open_write(path: str):
    if str(path).endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, "wb"), encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_read(path: str):
    if str(path).endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def write_telemetry(
    path: str,
    telemetry: Telemetry,
    reports: Optional[List] = None,
) -> int:
    """Serialize ``telemetry`` (and optional run reports) to ``path``.

    Returns the number of records written.  ``reports`` takes
    :class:`~repro.sim.instrumentation.RunReport` objects (anything
    with ``to_dict``).
    """
    records = 0
    with _open_write(path) as stream:
        meta = {
            "kind": "meta",
            "schema": SCHEMA_NAME,
            "version": SCHEMA_VERSION,
            "created_unix": time.time(),
            "meta": dict(telemetry.meta),
            "options": {
                "probes": telemetry.options.probes,
                "snapshot_every": telemetry.options.snapshot_every,
                "histogram_growth": telemetry.options.histogram_growth,
            },
        }
        stream.write(json.dumps(meta) + "\n")
        records += 1
        for event in telemetry.events:
            record = event.to_dict()
            record["kind"] = "event"
            stream.write(json.dumps(record) + "\n")
            records += 1
        for key, lane in telemetry.lanes.items():
            for snapshot in lane.snapshots:
                record = {"kind": "snapshot", "lane": key}
                record.update(snapshot)
                stream.write(json.dumps(record) + "\n")
                records += 1
        for lane in telemetry.lanes.values():
            record = lane.to_dict()
            record["kind"] = "lane"
            stream.write(json.dumps(record) + "\n")
            records += 1
        for report in reports or []:
            record = report.to_dict() if hasattr(report, "to_dict") else dict(report)
            record["kind"] = "report"
            stream.write(json.dumps(record) + "\n")
            records += 1
    return records


@dataclass
class TelemetryFile:
    """Structured form of one loaded telemetry JSONL file."""

    path: str
    meta: dict = field(default_factory=dict)
    events: List[dict] = field(default_factory=list)
    snapshots: List[dict] = field(default_factory=list)
    #: lane key -> end-of-run lane summary record
    lanes: Dict[str, dict] = field(default_factory=dict)
    reports: List[dict] = field(default_factory=list)
    #: schema violations found while loading (empty for a clean file)
    issues: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    @property
    def label(self) -> str:
        """Short display name: explicit run label, else the file path."""
        return str(self.meta.get("meta", {}).get("label") or self.path)

    def lane_snapshots(self, key: str) -> List[dict]:
        return [s for s in self.snapshots if s.get("lane") == key]


def _check_record(index: int, record: dict, issues: List[str]) -> None:
    kind = record.get("kind")
    if kind is None:
        issues.append(f"line {index}: record has no 'kind' field")
        return
    required = _REQUIRED_FIELDS.get(kind)
    if required is None:
        issues.append(f"line {index}: unknown record kind {kind!r}")
        return
    missing = [name for name in required if name not in record]
    if missing:
        issues.append(f"line {index}: {kind} record missing fields {missing}")
    if kind == "event" and record.get("level") not in (
        "debug",
        "info",
        "warning",
        "error",
    ):
        issues.append(f"line {index}: event has invalid level {record.get('level')!r}")
    if kind == "lane":
        registry = record.get("registry")
        if not isinstance(registry, dict):
            issues.append(f"line {index}: lane registry is not an object")
        else:
            for name, payload in registry.get("histograms", {}).items():
                if not isinstance(payload, dict) or "count" not in payload:
                    issues.append(f"line {index}: histogram {name!r} is malformed")


def read_telemetry(path: str) -> TelemetryFile:
    """Load ``path`` into a :class:`TelemetryFile`.

    Loading is tolerant: malformed lines are recorded as issues and
    skipped, so a partially written artifact still yields everything
    that is intact.  Check ``.ok`` (or run :func:`validate_telemetry`)
    when strictness matters.
    """
    out = TelemetryFile(path=str(path))
    with _open_read(path) as stream:
        for index, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                out.issues.append(f"line {index}: invalid JSON ({exc.msg})")
                continue
            if not isinstance(record, dict):
                out.issues.append(f"line {index}: record is not an object")
                continue
            _check_record(index, record, out.issues)
            kind = record.get("kind")
            if kind == "meta":
                if index != 1:
                    out.issues.append(
                        f"line {index}: meta record must be the first line"
                    )
                if record.get("schema") != SCHEMA_NAME:
                    out.issues.append(
                        f"line {index}: schema is {record.get('schema')!r}, "
                        f"expected {SCHEMA_NAME!r}"
                    )
                elif record.get("version") != SCHEMA_VERSION:
                    out.issues.append(
                        f"line {index}: schema version "
                        f"{record.get('version')!r} != {SCHEMA_VERSION}"
                    )
                out.meta = record
            elif kind == "event":
                out.events.append(record)
            elif kind == "snapshot":
                out.snapshots.append(record)
            elif kind == "lane":
                out.lanes[record.get("lane", "")] = record
            elif kind == "report":
                out.reports.append(record)
    if not out.meta:
        out.issues.insert(0, "file has no meta record")
    return out


def validate_telemetry(path: str) -> List[str]:
    """Schema-check ``path``; returns the list of violations (empty = ok)."""
    return read_telemetry(path).issues
