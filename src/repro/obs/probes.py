"""Per-cache probes: pure observers of cache-internal behaviour.

A probe is attached to a cache's ``probe`` attribute (see
:class:`~repro.core.base.VideoCache`); the cache's hot path calls the
hooks only when a probe is present, so a probe-free replay pays one
``is None`` check per request.  Probes never influence decisions —
the telemetry parity suite holds every algorithm to byte-identical
totals with probes on and off.

What gets captured:

* **all hooked caches** — serve/redirect outcome counters (with
  per-reason redirect breakdown), fill/eviction volumes, eviction-age
  (time since the victim's last access) and residence-time (time since
  the victim's admission) distributions, and the serve-vs-redirect
  decision margin distribution;
* **xLRU** (:class:`XlruProbe`) — Eq. 5 admission margins
  (``CacheAge - (t_now - t_last) * alpha_F2R``; positive admits) and
  the tracker size;
* **Cafe** (:class:`CafeProbe`) — Eqs. 6-7 cost margins
  (``E[redirect] - E[serve]``; positive serves), plus IAT-estimator
  health: how many missing-chunk estimates came from the chunk's own
  Eq. 8 history, from the unseen-chunk max-IAT video fallback, or from
  no history at all (cold).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.obs.registry import MetricRegistry
from repro.trace.requests import ChunkId

__all__ = ["CacheProbe", "CafeProbe", "PolicyProbe", "XlruProbe", "probe_for"]


class CacheProbe:
    """Base probe: outcome counters and lifetime distributions.

    Subclasses add algorithm-specific hooks; the base hooks cover every
    cache that reports serve/redirect outcomes and chunk fills and
    evictions.
    """

    #: extra lane-snapshot gauges this probe contributes (see
    #: :meth:`snapshot_gauges`)
    kind = "generic"

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        #: chunk -> admission time, for residence-time distributions
        self._admitted: Dict[ChunkId, float] = {}

    # -- outcome hooks -------------------------------------------------------

    def on_serve(self, t: float, filled_chunks: int, evicted_chunks: int) -> None:
        counters = self.registry.counters
        counters["serve"] = counters.get("serve", 0) + 1
        if filled_chunks:
            counters["fill_chunks"] = counters.get("fill_chunks", 0) + filled_chunks
        else:
            counters["serve.hit"] = counters.get("serve.hit", 0) + 1
        if evicted_chunks:
            counters["evict_chunks"] = (
                counters.get("evict_chunks", 0) + evicted_chunks
            )

    def on_redirect(self, t: float, reason: str) -> None:
        counters = self.registry.counters
        counters["redirect"] = counters.get("redirect", 0) + 1
        key = "redirect." + reason
        counters[key] = counters.get(key, 0) + 1

    # -- chunk lifetime hooks ------------------------------------------------

    def on_fill(self, t: float, chunk: ChunkId) -> None:
        """One chunk admitted to disk at time ``t``."""
        self._admitted[chunk] = t

    def on_evict(self, t: float, chunk: ChunkId, last_access: float) -> None:
        """One chunk evicted at ``t``; it was last touched at ``last_access``."""
        registry = self.registry
        age = t - last_access
        if math.isfinite(age) and age >= 0.0:
            registry.observe("evict_age", age)
        admitted = self._admitted.pop(chunk, None)
        if admitted is not None:
            registry.observe("residence", t - admitted)

    # -- decision margin -----------------------------------------------------

    def on_margin(self, margin: float) -> None:
        """The serve-vs-redirect margin of one decision (positive favours
        serving).  Unbounded margins (warm-up horizons) are counted, not
        binned."""
        if math.isfinite(margin):
            self.registry.observe("margin", margin)
        else:
            counters = self.registry.counters
            counters["margin.unbounded"] = counters.get("margin.unbounded", 0) + 1

    # -- pull-based gauges ---------------------------------------------------

    def snapshot_gauges(self, cache) -> dict:
        """Probe-specific gauges for one telemetry snapshot (cheap reads)."""
        return {"residence_tracked": len(self._admitted)}


class XlruProbe(CacheProbe):
    """xLRU-specific probe: Eq. 5 admission outcomes and tracker size."""

    kind = "xlru"

    def snapshot_gauges(self, cache) -> dict:
        gauges = super().snapshot_gauges(cache)
        gauges["tracked_videos"] = cache.tracked_videos
        return gauges


class CafeProbe(CacheProbe):
    """Cafe-specific probe: cost margins and IAT-estimator health."""

    kind = "cafe"

    def on_iat_estimate(self, source: str) -> None:
        """Classify one missing-chunk IAT estimate.

        ``source`` is ``"own"`` (the chunk's own Eq. 8 history),
        ``"video"`` (the unseen-chunk max-IAT fallback over cached
        sibling chunks) or ``"cold"`` (no usable history; the future
        term contributes nothing).
        """
        counters = self.registry.counters
        key = "iat." + source
        counters[key] = counters.get(key, 0) + 1

    def iat_fallback_rate(self) -> Optional[float]:
        """Fraction of estimates that used the video fallback (None if
        no estimates were made)."""
        return self.registry.rate("iat.video", "iat.own", "iat.video", "iat.cold")

    def snapshot_gauges(self, cache) -> dict:
        gauges = super().snapshot_gauges(cache)
        gauges["tracked_chunks"] = cache.tracked_chunks
        gauges["ghost_chunks"] = cache.ghost_chunks
        return gauges


class PolicyProbe(CacheProbe):
    """Policy-kernel probe: the base hooks (the generic
    :class:`~repro.core.policy.kernel.KernelCache` pipeline calls every
    outcome and lifetime hook, with per-reason redirect breakdowns from
    the policy's ``admit``) plus whatever numeric gauges the bound
    policy exposes through ``gauges()``."""

    kind = "policy"

    def snapshot_gauges(self, cache) -> dict:
        gauges = super().snapshot_gauges(cache)
        policy = getattr(cache, "policy", None)
        if policy is not None:
            for key, value in policy.gauges().items():
                gauges[f"policy.{key}"] = value
        return gauges


def probe_for(cache, registry: Optional[MetricRegistry] = None) -> CacheProbe:
    """The most specific probe for ``cache``, chosen by algorithm name.

    Dispatch is on the cache's ``name`` attribute rather than its class
    so wrappers and duck-typed caches that forward ``name`` still get
    the right probe; unknown algorithms get the generic base probe
    (outcome/lifetime hooks only fire if the cache calls them).
    Policy-kernel caches (anything carrying a bound ``policy`` object)
    get :class:`PolicyProbe`, which mirrors the policy's gauges.
    """
    name = getattr(cache, "name", "")
    if name == "xLRU":
        return XlruProbe(registry)
    if name == "Cafe":
        return CafeProbe(registry)
    if getattr(cache, "policy", None) is not None:
        return PolicyProbe(registry)
    return CacheProbe(registry)
