"""Structured, level-tagged event log for engine and scheduler plumbing.

The sweep scheduler's operational chatter — checkpoint journal resumes
and corrupt tails, shared-memory segment lifecycle, worker crashes and
in-process fallbacks — used to reach the user as a mix of
``warnings.warn`` text and nothing at all.  :class:`EventLog` gives
those paths one sink: every record is a :class:`TelemetryEvent` with a
wall-clock timestamp, a severity level and a machine-friendly tag, so
the telemetry JSONL export (and therefore CI artifacts) captures them
verbatim.

``warning``-level records still raise a real :class:`RuntimeWarning`
(callers and tests that filter on warnings keep working); ``error``
records always echo to stderr; ``info``/``debug`` records echo only
when the log was built with ``echo=True``.
"""

from __future__ import annotations

import sys
import time
import warnings
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["LEVELS", "EventLog", "TelemetryEvent"]

#: Recognized severity levels, in increasing order of severity.
LEVELS = ("debug", "info", "warning", "error")


@dataclass(frozen=True, slots=True)
class TelemetryEvent:
    """One structured log record.

    ``wall`` is seconds since the Unix epoch (CI artifacts correlate
    across jobs by wall time); ``tag`` is a short machine-friendly
    identifier ("checkpoint-resume", "shm-unlink-failed"); ``detail``
    is free-form human context.
    """

    wall: float
    level: str
    tag: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "wall": self.wall,
            "level": self.level,
            "tag": self.tag,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetryEvent":
        return cls(
            wall=data["wall"],
            level=data["level"],
            tag=data["tag"],
            detail=data.get("detail", ""),
        )

    def __str__(self) -> str:
        suffix = f": {self.detail}" if self.detail else ""
        return f"[{self.level}] {self.tag}{suffix}"


class EventLog:
    """Bounded, mergeable collection of :class:`TelemetryEvent` records.

    The record list is capped at ``max_records`` (oldest records are
    dropped, and the drop itself is counted) so a pathological run
    cannot grow the log without bound.
    """

    def __init__(self, echo: bool = False, max_records: int = 10_000) -> None:
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self.echo = echo
        self.max_records = max_records
        self.records: List[TelemetryEvent] = []
        #: records discarded to honour ``max_records``
        self.dropped = 0

    # -- emission ------------------------------------------------------------

    def emit(
        self, level: str, tag: str, detail: str = "", wall: Optional[float] = None
    ) -> TelemetryEvent:
        """Record one event; returns it for callers that also display it."""
        if level not in LEVELS:
            raise ValueError(f"level must be one of {LEVELS}, got {level!r}")
        event = TelemetryEvent(
            wall=time.time() if wall is None else wall,
            level=level,
            tag=tag,
            detail=detail,
        )
        self.records.append(event)
        if len(self.records) > self.max_records:
            overflow = len(self.records) - self.max_records
            del self.records[:overflow]
            self.dropped += overflow
        return event

    def debug(self, tag: str, detail: str = "") -> TelemetryEvent:
        event = self.emit("debug", tag, detail)
        if self.echo:
            print(str(event), file=sys.stderr)
        return event

    def info(self, tag: str, detail: str = "") -> TelemetryEvent:
        event = self.emit("info", tag, detail)
        if self.echo:
            print(str(event), file=sys.stderr)
        return event

    def warning(
        self,
        tag: str,
        detail: str = "",
        category: type = RuntimeWarning,
        stacklevel: int = 3,
    ) -> TelemetryEvent:
        """Record a warning and raise it through the warnings machinery.

        Routing through :func:`warnings.warn` keeps the record visible
        on stderr exactly once (no double echo) and keeps
        ``pytest.warns`` / ``-W error`` semantics intact for callers
        that relied on the scheduler's previous ad-hoc warnings.
        """
        event = self.emit("warning", tag, detail)
        warnings.warn(detail or tag, category, stacklevel=stacklevel)
        return event

    def error(self, tag: str, detail: str = "") -> TelemetryEvent:
        event = self.emit("error", tag, detail)
        print(str(event), file=sys.stderr)
        return event

    # -- access / composition ------------------------------------------------

    def select(self, level: str) -> List[TelemetryEvent]:
        """All records at exactly ``level``."""
        return [record for record in self.records if record.level == level]

    def merge(self, other: "EventLog") -> None:
        """Fold ``other``'s records in, keeping wall-clock order."""
        self.records = sorted(
            self.records + other.records, key=lambda record: record.wall
        )
        self.dropped += other.dropped
        if len(self.records) > self.max_records:
            overflow = len(self.records) - self.max_records
            del self.records[:overflow]
            self.dropped += overflow

    def to_dicts(self) -> List[dict]:
        return [record.to_dict() for record in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
