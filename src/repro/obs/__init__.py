"""Telemetry subsystem: structured tracing of replay internals.

The paper's analysis (Sections 4-8) hinges on *why* a cache serves or
redirects — cache age, per-chunk IAT estimates (Eq. 8), eviction
behaviour — yet the engine's :class:`~repro.sim.instrumentation.RunReport`
only records end-of-run totals.  ``repro.obs`` is the observability
layer underneath it:

* :class:`~repro.obs.registry.MetricRegistry` — named counters, gauges,
  timers and :class:`~repro.obs.sketch.HistogramSketch` distributions,
  all mergeable across worker processes;
* :class:`~repro.obs.probes.CacheProbe` — optional per-cache hooks
  (eviction age / residence distributions, xLRU admission outcomes,
  Cafe IAT-estimator health, serve/redirect decision margins) that are
  pure observers: replays with probes attached are byte-identical to
  probe-free replays;
* :class:`~repro.obs.telemetry.Telemetry` — the run-level container the
  engine threads through :class:`~repro.sim.engine.MultiReplay` (both
  the object and the packed lanes), sampling per-cache snapshots on a
  request cadence, at zero cost when disabled;
* :class:`~repro.obs.events.EventLog` — a structured, level-tagged
  event log replacing ad-hoc stderr writes in the sweep scheduler;
* :mod:`repro.obs.jsonl` — the versioned JSONL export format plus its
  schema validator;
* :mod:`repro.obs.report` — the ``repro-report`` CLI: per-algorithm
  tables and run-vs-run deltas, for humans and (via ``--json`` and exit
  codes) for CI jobs.
"""

from repro.obs.events import EventLog, TelemetryEvent
from repro.obs.jsonl import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    TelemetryFile,
    read_telemetry,
    validate_telemetry,
    write_telemetry,
)
from repro.obs.probes import CacheProbe, CafeProbe, XlruProbe, probe_for
from repro.obs.registry import MetricRegistry
from repro.obs.sketch import HistogramSketch
from repro.obs.telemetry import LaneTelemetry, Telemetry, TelemetryOptions

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "CacheProbe",
    "CafeProbe",
    "EventLog",
    "HistogramSketch",
    "LaneTelemetry",
    "MetricRegistry",
    "Telemetry",
    "TelemetryEvent",
    "TelemetryFile",
    "TelemetryOptions",
    "XlruProbe",
    "probe_for",
    "read_telemetry",
    "validate_telemetry",
    "write_telemetry",
]
