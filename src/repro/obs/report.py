"""``repro-report``: render and compare telemetry files.

One file renders as per-lane tables: the classic traffic metrics next
to the cache-internals the probes captured (fill/eviction volumes,
admission outcomes, IAT-estimator health, decision-margin and
eviction-age quantiles).  Two or more files render as a comparison —
lanes aligned by key, metric deltas computed against the first file
(the baseline) — which is what the CI job consumes: ``--json`` emits
the same structure machine-readably, and ``--max-eff-drop`` turns a
steady-state efficiency regression into a non-zero exit code.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional

from repro.analysis.tables import format_table
from repro.obs.jsonl import TelemetryFile, read_telemetry
from repro.obs.sketch import HistogramSketch

__all__ = [
    "compare_runs",
    "lane_metrics",
    "load_runs",
    "render_comparison",
    "render_single",
]

#: Quantiles surfaced for each captured distribution.
_QUANTILES = (0.5, 0.9)


def load_runs(paths: List[str]) -> List[TelemetryFile]:
    return [read_telemetry(path) for path in paths]


def _ratio(numerator: float, denominator: float) -> Optional[float]:
    if not denominator:
        return None
    return numerator / denominator


def lane_metrics(lane: dict) -> dict:
    """Flatten one lane summary record into reportable scalars."""
    registry = lane.get("registry", {})
    counters = registry.get("counters", {})
    histograms = registry.get("histograms", {})
    steady = lane.get("steady") or {}
    totals = lane.get("totals") or {}

    serves = counters.get("serve", 0)
    redirects = counters.get("redirect", 0)
    out: dict = {
        "lane": lane.get("lane", ""),
        "algorithm": lane.get("algorithm", ""),
        "requests": lane.get("num_requests", 0),
        "efficiency": steady.get("efficiency"),
        "redirect_ratio": steady.get("redirect_ratio"),
        "ingress_fraction": steady.get("ingress_fraction"),
        "total_efficiency": totals.get("efficiency"),
        "fill_chunks": counters.get("fill_chunks", 0),
        "evict_chunks": counters.get("evict_chunks", 0),
        "hit_rate": _ratio(counters.get("serve.hit", 0), serves),
        "probe_redirects": redirects,
    }
    iat_known = (
        counters.get("iat.own", 0)
        + counters.get("iat.video", 0)
        + counters.get("iat.cold", 0)
    )
    out["iat_fallback_rate"] = _ratio(counters.get("iat.video", 0), iat_known)
    out["margin_unbounded"] = counters.get("margin.unbounded", 0)
    for name in ("margin", "evict_age", "residence"):
        payload = histograms.get(name)
        if payload:
            sketch = HistogramSketch.from_dict(payload)
            for q in _QUANTILES:
                out[f"{name}_p{int(q * 100)}"] = sketch.quantile(q)
    return out


def _lane_rows(telemetry_file: TelemetryFile) -> List[dict]:
    return [lane_metrics(lane) for lane in telemetry_file.lanes.values()]


def render_single(telemetry_file: TelemetryFile) -> str:
    """Human-readable report of one telemetry file."""
    sections: List[str] = []
    meta = telemetry_file.meta.get("meta", {})
    head = f"telemetry: {telemetry_file.label}"
    if meta:
        interesting = {k: v for k, v in meta.items() if k not in ("label",) and v != ""}
        if interesting:
            head += "\n  " + ", ".join(
                f"{k}={v}" for k, v in sorted(interesting.items())
            )
    sections.append(head)

    rows = _lane_rows(telemetry_file)
    if rows:
        traffic_cols = [
            "lane",
            "algorithm",
            "requests",
            "efficiency",
            "redirect_ratio",
            "ingress_fraction",
        ]
        sections.append(
            format_table(rows, columns=traffic_cols, title="traffic (steady state)")
        )
        internals_cols = [
            "lane",
            "fill_chunks",
            "evict_chunks",
            "hit_rate",
            "iat_fallback_rate",
            "margin_p50",
            "evict_age_p50",
            "residence_p50",
        ]
        sections.append(
            format_table(rows, columns=internals_cols, title="cache internals")
        )
    else:
        sections.append("(no lanes)")

    warning_count = sum(
        1 for e in telemetry_file.events if e.get("level") in ("warning", "error")
    )
    sections.append(
        f"{len(telemetry_file.snapshots)} snapshot(s), "
        f"{len(telemetry_file.events)} event(s) "
        f"({warning_count} warning/error)"
    )
    return "\n\n".join(sections)


def compare_runs(files: List[TelemetryFile]) -> dict:
    """Align lanes across ``files``; baseline is the first file.

    Returns ``{"files": [...], "lanes": {key: {"metrics": [per-file
    dict|None], "deltas": {metric: candidate - baseline}}}}`` where
    deltas compare the *last* file against the baseline.
    """
    keys: List[str] = []
    for telemetry_file in files:
        for key in telemetry_file.lanes:
            if key not in keys:
                keys.append(key)
    lanes: Dict[str, dict] = {}
    for key in keys:
        per_file: List[Optional[dict]] = []
        for telemetry_file in files:
            lane = telemetry_file.lanes.get(key)
            per_file.append(lane_metrics(lane) if lane is not None else None)
        deltas: Dict[str, float] = {}
        base, last = per_file[0], per_file[-1]
        if base is not None and last is not None:
            for metric in ("efficiency", "redirect_ratio", "ingress_fraction"):
                b, c = base.get(metric), last.get(metric)
                if (
                    isinstance(b, (int, float))
                    and isinstance(c, (int, float))
                    and math.isfinite(b)
                    and math.isfinite(c)
                ):
                    deltas[metric] = c - b
        lanes[key] = {"metrics": per_file, "deltas": deltas}
    return {
        "files": [telemetry_file.label for telemetry_file in files],
        "lanes": lanes,
    }


def render_comparison(files: List[TelemetryFile]) -> str:
    """Human-readable comparison table of two or more files."""
    comparison = compare_runs(files)
    labels = comparison["files"]
    rows = []
    for key, entry in comparison["lanes"].items():
        row: dict = {"lane": key}
        for label, metrics in zip(labels, entry["metrics"]):
            row[label] = metrics.get("efficiency") if metrics else None
        row["delta"] = entry["deltas"].get("efficiency")
        rows.append(row)
    header = "steady-state efficiency by run (delta = last - first)"
    return format_table(rows, title=header)


def max_efficiency_drop(comparison: dict) -> float:
    """The worst efficiency regression (positive = got worse)."""
    worst = 0.0
    for entry in comparison["lanes"].values():
        delta = entry["deltas"].get("efficiency")
        if delta is not None:
            worst = max(worst, -delta)
    return worst


def main(argv=None) -> int:
    """CLI body for ``repro-report`` (wired up in :mod:`repro.cli`)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-report",
        description=(
            "Render one telemetry JSONL file, or compare several "
            "(the first file is the baseline)."
        ),
    )
    parser.add_argument("files", nargs="+", help="telemetry .jsonl file(s)")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable comparison structure instead of tables",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate every file against the schema; exit 1 on violations",
    )
    parser.add_argument(
        "--max-eff-drop",
        type=float,
        default=None,
        metavar="X",
        help=(
            "exit 1 when any lane's steady-state efficiency drops by "
            "more than X between the baseline (first file) and the "
            "last file"
        ),
    )
    args = parser.parse_args(argv)

    files = load_runs(args.files)
    bad = [f for f in files if not f.ok]
    if bad:
        for telemetry_file in bad:
            for issue in telemetry_file.issues[:20]:
                print(f"{telemetry_file.path}: {issue}")
            if len(telemetry_file.issues) > 20:
                print(
                    f"{telemetry_file.path}: ... and "
                    f"{len(telemetry_file.issues) - 20} more"
                )
        if args.check:
            return 1

    if args.json:
        payload = compare_runs(files)
        payload["schema_ok"] = not bad
        if args.max_eff_drop is not None:
            payload["max_efficiency_drop"] = max_efficiency_drop(payload)
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif len(files) == 1:
        print(render_single(files[0]))
    else:
        print(render_comparison(files))

    if args.max_eff_drop is not None:
        worst = max_efficiency_drop(compare_runs(files))
        if worst > args.max_eff_drop:
            print(
                f"FAIL: steady-state efficiency dropped {worst:.4f} "
                f"(> {args.max_eff_drop:.4f} allowed)"
            )
            return 1
    return 0
