"""Request/trace model: the input language of every cache (Section 4).

A trace is a time-ordered sequence of :class:`Request` objects, each
carrying a video ID, an inclusive byte range and an arrival timestamp.
Disk and files are divided into fixed-size chunks of ``K`` bytes
(default 2 MB, the paper's choice), and a request's chunk range is
derived from its byte range.
"""

from repro.trace.requests import (
    DEFAULT_CHUNK_BYTES,
    ChunkId,
    Request,
    chunk_range,
    request_chunks,
)
from repro.trace.columnar import (
    PackedTrace,
    PackedTraceBuilder,
    SharedTraceHandle,
    pack_trace,
)
from repro.trace.fleet import FleetTrace, SharedFleetHandle
from repro.trace.io import (
    read_trace_csv,
    read_trace_jsonl,
    write_trace_csv,
    write_trace_jsonl,
)
from repro.trace.adapters import ParseStats, read_clf_log, read_tsv_log
from repro.trace.sampling import downsample_trace, time_window
from repro.trace.stats import TraceStats
from repro.trace.turnover import popularity_turnover, top_videos_by_window
from repro.trace.validate import ValidationReport, repair_trace, validate_trace

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "ChunkId",
    "Request",
    "chunk_range",
    "request_chunks",
    "PackedTrace",
    "PackedTraceBuilder",
    "FleetTrace",
    "SharedFleetHandle",
    "SharedTraceHandle",
    "pack_trace",
    "read_trace_csv",
    "read_trace_jsonl",
    "write_trace_csv",
    "write_trace_jsonl",
    "downsample_trace",
    "time_window",
    "TraceStats",
    "ValidationReport",
    "validate_trace",
    "repair_trace",
    "ParseStats",
    "read_clf_log",
    "read_tsv_log",
    "popularity_turnover",
    "top_videos_by_window",
]
