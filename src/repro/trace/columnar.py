"""Columnar trace representation: the packed fast lane of the engine.

Replay throughput is bounded by per-request Python overhead: attribute
lookups on ``Request`` objects, ``__post_init__`` validation, and
re-deriving byte/chunk counts in every lane.  :class:`PackedTrace`
lowers a request sequence **once** into flat parallel arrays —

* ``t``            arrival timestamps (float64)
* ``video``        video IDs (int64)
* ``b0``, ``b1``   inclusive byte range (int64)
* ``c0``, ``c1``   derived inclusive chunk range (int64)
* ``num_bytes``    ``b1 - b0 + 1`` (int64)
* ``num_chunks``   ``c1 - c0 + 1`` (int64)

— validating time order and byte ranges at pack time, so the hot loop
can skip both the per-request order check and all re-derivation.

The backing storage is numpy when available, ``array``/``memoryview``
otherwise; either way every column is a fixed 8-byte-per-element buffer,
which makes the layout trivially exportable to
``multiprocessing.shared_memory``: :meth:`PackedTrace.to_shared` writes
the eight columns back-to-back into one segment and returns a tiny
picklable :class:`SharedTraceHandle` that sweep workers :meth:`attach
<SharedTraceHandle.attach>` to — one copy of the trace in ``/dev/shm``
instead of one pickled copy per worker.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.trace.requests import DEFAULT_CHUNK_BYTES, Request

#: Environment knob forcing the pure-``array``/``memoryview`` backing
#: even when numpy is importable.  CI uses it to exercise the fallback
#: lane on hosts where numpy cannot simply be uninstalled.
NO_NUMPY_ENV = "REPRO_NO_NUMPY"

try:  # pragma: no cover - exercised implicitly on numpy-equipped hosts
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

if os.environ.get(NO_NUMPY_ENV, "").strip() not in ("", "0"):
    _np = None  # pragma: no cover - exercised by the no-numpy CI lane

__all__ = [
    "BlockView",
    "PackedTrace",
    "PackedTraceBuilder",
    "SharedTraceHandle",
    "active_shared_traces",
    "pack_trace",
]

#: Column order is the shared-memory layout: column ``i`` of an
#: ``n``-request trace occupies bytes ``[i*8*n, (i+1)*8*n)``.
_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("t", "d"),
    ("video", "q"),
    ("b0", "q"),
    ("b1", "q"),
    ("c0", "q"),
    ("c1", "q"),
    ("num_bytes", "q"),
    ("num_chunks", "q"),
)

_ITEMSIZE = 8

#: int64 guard: values at or beyond this cannot be packed losslessly.
_INT64_MAX = 2**63 - 1

#: Names of shared-memory segments created (and not yet unlinked) by
#: this process — the leak detector for tests and crash-path audits.
_ACTIVE_SEGMENTS: set = set()


def active_shared_traces() -> frozenset:
    """Segment names exported by this process and not yet unlinked."""
    return frozenset(_ACTIVE_SEGMENTS)


def _np_dtype(typecode: str):
    return _np.float64 if typecode == "d" else _np.int64


def _make_column(typecode: str, values: List) -> "object":
    """Build one backing column from a plain Python list."""
    if _np is not None:
        return _np.asarray(values, dtype=_np_dtype(typecode))
    import array as _array

    return memoryview(_array.array(typecode, values))


class PackedTrace(Sequence):
    """A request trace lowered to flat parallel arrays.

    Behaves as an immutable ``Sequence[Request]`` (indexing materializes
    a :class:`Request`, so offline ``prepare`` and existing engine code
    work unchanged) while exposing the raw columns for batched hot
    paths.  Construct via :func:`pack_trace` or
    :meth:`SharedTraceHandle.attach`; the constructor itself trusts its
    inputs and performs no validation.
    """

    __slots__ = ("chunk_bytes", "_n", "_cols", "_hot", "_shm")

    def __init__(
        self,
        chunk_bytes: int,
        columns: Dict[str, object],
        n: int,
        shm: "object | None" = None,
    ) -> None:
        self.chunk_bytes = chunk_bytes
        self._n = n
        self._cols = columns
        self._hot: Optional[Tuple[list, ...]] = None
        self._shm = shm

    # -- Sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._n)
            if step == 1:
                cols = {name: col[start:stop] for name, col in self._cols.items()}
                return PackedTrace(self.chunk_bytes, cols, max(0, stop - start))
            indices = range(start, stop, step)
            cols = {
                name: _make_column(typecode, [self._cols[name][i] for i in indices])
                for name, typecode in _COLUMNS
            }
            return PackedTrace(self.chunk_bytes, cols, len(indices))
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError("PackedTrace index out of range")
        cols = self._cols
        return Request(
            float(cols["t"][index]),
            int(cols["video"][index]),
            int(cols["b0"][index]),
            int(cols["b1"][index]),
        )

    def __iter__(self) -> Iterator[Request]:
        ts, videos, b0s, b1s = self.hot_columns()[:4]
        for t, video, b0, b1 in zip(ts, videos, b0s, b1s):
            yield Request(t, video, b0, b1)

    def __repr__(self) -> str:
        return (
            f"PackedTrace({self._n} requests, chunk_bytes={self.chunk_bytes}, "
            f"backing={'numpy' if _np is not None else 'array'})"
        )

    # -- columnar access -----------------------------------------------------

    def column(self, name: str):
        """The raw backing array of one column (zero-copy)."""
        return self._cols[name]

    def hot_columns(self) -> Tuple[list, ...]:
        """All eight columns as plain Python lists, in layout order.

        Plain lists iterate faster than numpy scalars or memoryviews in
        a pure-Python loop (no per-element boxing), so the engine's
        packed lane slices these.  Computed once and cached.
        """
        if self._hot is None:
            hot = []
            for name, _typecode in _COLUMNS:
                col = self._cols[name]
                hot.append(col.tolist())
            self._hot = tuple(hot)
        return self._hot

    def block_view(self, start: int, stop: int) -> "BlockView":
        """One engine-block :class:`BlockView` over ``[start, stop)``.

        The view carries both list slices (for the scalar block walks)
        and, on numpy-backed traces, zero-copy array slices plus the
        lazily derived per-block columns the decision kernels consume.
        """
        hot = self.hot_columns()
        cols = self._cols
        vectorized = _np is not None and isinstance(cols["t"], _np.ndarray)
        return BlockView(self.chunk_bytes, start, stop, hot, cols if vectorized else None)

    @property
    def nbytes(self) -> int:
        """Total payload size of the packed columns."""
        return self._n * _ITEMSIZE * len(_COLUMNS)

    def total_requested_bytes(self) -> int:
        """Sum of the ``num_bytes`` column (C-speed, no request objects)."""
        col = self._cols["num_bytes"]
        if _np is not None and isinstance(col, _np.ndarray):
            return int(col.sum())
        return sum(col)

    def unique_chunk_count(self) -> int:
        """Distinct ``(video, chunk)`` pairs touched, at this chunk size.

        The columnar equivalent of ``set().update(r.chunk_ids())`` over a
        request list — used to size disks off the trace footprint.
        """
        _ts, videos, _b0s, _b1s, c0s, c1s, _nb, _nc = self.hot_columns()
        unique: set = set()
        add = unique.add
        for video, c0, c1 in zip(videos, c0s, c1s):
            if c0 == c1:
                add((video, c0))
            else:
                for c in range(c0, c1 + 1):
                    add((video, c))
        return len(unique)

    # -- serialization -------------------------------------------------------

    def __reduce__(self):
        payload = tuple(self._column_bytes(name) for name, _ in _COLUMNS)
        return (_unpack_pickled, (self.chunk_bytes, self._n, payload))

    def _column_bytes(self, name: str) -> bytes:
        col = self._cols[name]
        if _np is not None and isinstance(col, _np.ndarray):
            return col.tobytes()
        return bytes(col)

    def to_shared(self, name: Optional[str] = None) -> "SharedTraceHandle":
        """Export the packed columns into one shared-memory segment.

        Returns a picklable handle; the caller owns the segment and must
        :meth:`SharedTraceHandle.unlink` it (the scheduler does so in a
        ``finally`` so crash/retry paths cannot leak ``/dev/shm``
        entries).  Empty traces cannot be shared — ``SharedMemory``
        rejects zero-sized segments.
        """
        from multiprocessing import shared_memory

        total = self.nbytes
        if total == 0:
            raise ValueError("cannot export an empty trace to shared memory")
        shm = shared_memory.SharedMemory(create=True, size=total, name=name)
        try:
            offset = 0
            for cname, _typecode in _COLUMNS:
                data = self._column_bytes(cname)
                shm.buf[offset : offset + len(data)] = data
                offset += len(data)
            handle = SharedTraceHandle(shm.name, self._n, self.chunk_bytes)
            handle._shm = shm
            _ACTIVE_SEGMENTS.add(shm.name)
            return handle
        except BaseException:
            shm.close()
            shm.unlink()
            raise

    def close(self) -> None:
        """Release an attached shared-memory mapping (no-op otherwise)."""
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        self._cols = {}  # hot lists (if computed) are plain copies and survive
        try:
            shm.close()
        except BufferError:  # a caller still holds a column view
            pass


def _unpack_pickled(
    chunk_bytes: int, n: int, payload: Tuple[bytes, ...]
) -> PackedTrace:
    cols: Dict[str, object] = {}
    for (name, typecode), raw in zip(_COLUMNS, payload):
        if _np is not None:
            cols[name] = _np.frombuffer(raw, dtype=_np_dtype(typecode))
        else:
            cols[name] = memoryview(raw).cast(typecode)
    return PackedTrace(chunk_bytes, cols, n)


class SharedTraceHandle:
    """Picklable reference to a :class:`PackedTrace` in shared memory.

    The parent process creates it via :meth:`PackedTrace.to_shared` and
    passes it to workers in place of the request list; each worker calls
    :meth:`attach` to map the one segment.  Pickling carries only the
    segment name and metadata — a few dozen bytes regardless of trace
    length.
    """

    __slots__ = ("name", "length", "chunk_bytes", "_shm")

    def __init__(self, name: str, length: int, chunk_bytes: int) -> None:
        self.name = name
        self.length = length
        self.chunk_bytes = chunk_bytes
        self._shm = None

    def __getstate__(self):
        return (self.name, self.length, self.chunk_bytes)

    def __setstate__(self, state) -> None:
        self.name, self.length, self.chunk_bytes = state
        self._shm = None

    def __len__(self) -> int:
        return self.length

    @property
    def nbytes(self) -> int:
        return self.length * _ITEMSIZE * len(_COLUMNS)

    def __repr__(self) -> str:
        return (
            f"SharedTraceHandle({self.name!r}, {self.length} requests, "
            f"chunk_bytes={self.chunk_bytes})"
        )

    def attach(self) -> PackedTrace:
        """Map the segment and view it as a :class:`PackedTrace`.

        The returned trace owns the mapping; call
        :meth:`PackedTrace.close` when done (the worker-side executor
        does).  Attaching never copies the column payload.
        """
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=self.name)
        n = self.length
        cols: Dict[str, object] = {}
        for i, (cname, typecode) in enumerate(_COLUMNS):
            offset = i * _ITEMSIZE * n
            if _np is not None:
                cols[cname] = _np.ndarray(
                    (n,), dtype=_np_dtype(typecode), buffer=shm.buf, offset=offset
                )
            else:
                cols[cname] = shm.buf[offset : offset + _ITEMSIZE * n].cast(typecode)
        return PackedTrace(self.chunk_bytes, cols, n, shm=shm)

    def close(self) -> None:
        """Release the creator-side mapping without destroying the segment."""
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - no views are handed out
            pass

    def unlink(self) -> None:
        """Destroy the segment (idempotent).  Call exactly once, parent-side."""
        from multiprocessing import shared_memory

        shm = self._shm
        self._shm = None
        if shm is None:
            try:
                shm = shared_memory.SharedMemory(name=self.name)
            except FileNotFoundError:
                _ACTIVE_SEGMENTS.discard(self.name)
                return
        try:
            shm.close()
        except BufferError:  # pragma: no cover
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        _ACTIVE_SEGMENTS.discard(self.name)


class BlockView:
    """One engine block of packed request columns, in both backings.

    The replay lanes hand whole blocks to the per-cache decision
    kernels (:meth:`~repro.core.base.VideoCache.handle_span_block_kernel`).
    A view exposes the same slice twice — plain list slices for the
    scalar block walks, zero-copy numpy slices for vectorized
    pre-screens — plus *derived per-block columns* that are computed
    lazily, once, and shared by every lane replaying the block:

    * the stable per-video grouping (``video_groups``), the basis of
      per-video residency summaries and batched touch condensation;
    * the previous same-video occurrence time within the block
      (``prev_t``, NaN at a video's first in-block occurrence) and the
      matching ``first_occurrence`` mask — what admission pre-screens
      join against their tracker snapshots.

    On the array-fallback lane (``REPRO_NO_NUMPY``) only the list
    slices exist and :attr:`vectorized` is False; kernels must fall
    back to their scalar reference walk.
    """

    __slots__ = (
        "chunk_bytes",
        "n",
        "ts",
        "videos",
        "b0s",
        "b1s",
        "c0s",
        "c1s",
        "num_bytes",
        "num_chunks",
        "ts_l",
        "videos_l",
        "b0s_l",
        "b1s_l",
        "c0s_l",
        "c1s_l",
        "_order",
        "_starts",
        "_uniq",
        "_inverse",
        "_prev_t",
        "_first",
    )

    def __init__(
        self,
        chunk_bytes: int,
        start: int,
        stop: int,
        hot: Tuple[list, ...],
        np_cols: "Optional[Dict[str, object]]",
    ) -> None:
        self.chunk_bytes = chunk_bytes
        self.n = stop - start
        ts, videos, b0s, b1s, c0s, c1s, _nb, _nc = hot
        self.ts_l = ts[start:stop]
        self.videos_l = videos[start:stop]
        self.b0s_l = b0s[start:stop]
        self.b1s_l = b1s[start:stop]
        self.c0s_l = c0s[start:stop]
        self.c1s_l = c1s[start:stop]
        if np_cols is not None:
            self.ts = np_cols["t"][start:stop]
            self.videos = np_cols["video"][start:stop]
            self.b0s = np_cols["b0"][start:stop]
            self.b1s = np_cols["b1"][start:stop]
            self.c0s = np_cols["c0"][start:stop]
            self.c1s = np_cols["c1"][start:stop]
            self.num_bytes = np_cols["num_bytes"][start:stop]
            self.num_chunks = np_cols["num_chunks"][start:stop]
        else:
            self.ts = None
            self.videos = None
            self.b0s = None
            self.b1s = None
            self.c0s = None
            self.c1s = None
            self.num_bytes = None
            self.num_chunks = None
        self._order = None
        self._starts = None
        self._uniq = None
        self._inverse = None
        self._prev_t = None
        self._first = None

    @property
    def vectorized(self) -> bool:
        """Whether numpy column slices (and derived columns) exist."""
        return self.ts is not None

    def video_groups(self) -> Tuple["object", "object", "object"]:
        """``(uniq, order, starts)``: the stable per-video grouping.

        ``order`` is the stable argsort of the video column; requests of
        unique video ``uniq[j]`` occupy ``order[starts[j]:starts[j+1]]``
        in ascending request order (stability keeps time order within
        each group).  Computed once per block, shared across lanes.
        """
        if self._order is None:
            videos = self.videos
            order = _np.argsort(videos, kind="stable")
            sv = videos[order]
            cuts = _np.flatnonzero(sv[1:] != sv[:-1]) + 1
            starts = _np.concatenate(([0], cuts, [self.n])).astype(_np.int64)
            self._order = order
            self._starts = starts
            self._uniq = sv[starts[:-1]] if self.n else sv
        return self._uniq, self._order, self._starts

    def video_inverse(self) -> "object":
        """Per-request index into ``video_groups()[0]`` (np.unique-style)."""
        if self._inverse is None:
            uniq, order, starts = self.video_groups()
            counts = _np.diff(starts)
            inverse = _np.empty(self.n, dtype=_np.int64)
            inverse[order] = _np.repeat(
                _np.arange(len(uniq), dtype=_np.int64), counts
            )
            self._inverse = inverse
        return self._inverse

    def prev_t(self) -> "object":
        """Previous same-video occurrence time within the block.

        ``prev_t[i]`` is the timestamp of the latest ``j < i`` with
        ``videos[j] == videos[i]``, or NaN when ``i`` is its video's
        first in-block occurrence — the in-block part of a "last access"
        column that admission pre-screens complete from their tracker
        snapshot at the block boundary.
        """
        if self._prev_t is None:
            _uniq, order, starts = self.video_groups()
            tsorted = self.ts[order]
            prev_sorted = _np.empty(self.n, dtype=_np.float64)
            if self.n:
                prev_sorted[1:] = tsorted[:-1]
            prev_sorted[starts[:-1]] = _np.nan
            prev = _np.empty(self.n, dtype=_np.float64)
            prev[order] = prev_sorted
            self._prev_t = prev
        return self._prev_t

    def first_occurrence(self) -> "object":
        """Mask of each video's first in-block occurrence."""
        if self._first is None:
            _uniq, order, starts = self.video_groups()
            first = _np.zeros(self.n, dtype=bool)
            first[order[starts[:-1]]] = True
            self._first = first
        return self._first


def pack_trace(
    requests: "Iterable[Request] | PackedTrace",
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    validate: bool = True,
) -> PackedTrace:
    """Lower a request sequence into a :class:`PackedTrace`.

    One validating pass extracts the four source columns; the four
    derived columns are computed vectorized (numpy) or in C-speed
    comprehensions.  Validation mirrors the engine's object-path
    checks — time order raises the same ``"trace not time-ordered at
    index i"`` message — so a trace that packs cleanly is exactly a
    trace the object loop would accept, and the packed lane can skip
    per-request checks.

    Packing an already-packed trace is a no-op when the chunk size
    matches, and re-derives only the chunk columns when it differs.
    """
    if chunk_bytes <= 0:
        raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
    if isinstance(requests, PackedTrace):
        if requests.chunk_bytes == chunk_bytes:
            return requests
        return _rechunk(requests, chunk_bytes)

    ts: List[float] = []
    videos: List[int] = []
    b0s: List[int] = []
    b1s: List[int] = []
    last_t = float("-inf")
    index = 0
    for request in requests:
        t = request.t
        b0 = request.b0
        b1 = request.b1
        if validate:
            if t < last_t:
                raise ValueError(
                    f"trace not time-ordered at index {index}: {t} < {last_t}"
                )
            if b0 < 0 or b1 < b0:
                raise ValueError(
                    f"invalid byte range [{b0}, {b1}] at index {index}"
                )
        last_t = t
        ts.append(t)
        videos.append(request.video)
        b0s.append(b0)
        b1s.append(b1)
        index += 1

    if b1s and (max(b1s) >= _INT64_MAX or max(abs(v) for v in videos) >= _INT64_MAX):
        raise OverflowError("trace values exceed the packed int64 range")

    k = chunk_bytes
    if _np is not None:
        b0_arr = _np.asarray(b0s, dtype=_np.int64)
        b1_arr = _np.asarray(b1s, dtype=_np.int64)
        c0_arr = b0_arr // k
        c1_arr = b1_arr // k
        cols: Dict[str, object] = {
            "t": _np.asarray(ts, dtype=_np.float64),
            "video": _np.asarray(videos, dtype=_np.int64),
            "b0": b0_arr,
            "b1": b1_arr,
            "c0": c0_arr,
            "c1": c1_arr,
            "num_bytes": b1_arr - b0_arr + 1,
            "num_chunks": c1_arr - c0_arr + 1,
        }
    else:
        c0s = [b // k for b in b0s]
        c1s = [b // k for b in b1s]
        cols = {
            "t": _make_column("d", ts),
            "video": _make_column("q", videos),
            "b0": _make_column("q", b0s),
            "b1": _make_column("q", b1s),
            "c0": _make_column("q", c0s),
            "c1": _make_column("q", c1s),
            "num_bytes": _make_column(
                "q", [hi - lo + 1 for lo, hi in zip(b0s, b1s)]
            ),
            "num_chunks": _make_column(
                "q", [hi - lo + 1 for lo, hi in zip(c0s, c1s)]
            ),
        }
    return PackedTrace(chunk_bytes, cols, index)


def _rechunk(packed: PackedTrace, chunk_bytes: int) -> PackedTrace:
    """Re-derive the chunk columns of a packed trace for a new chunk size."""
    k = chunk_bytes
    cols = dict(packed._cols)
    if _np is not None and isinstance(cols["b0"], _np.ndarray):
        c0 = cols["b0"] // k
        c1 = cols["b1"] // k
        cols["c0"] = c0
        cols["c1"] = c1
        cols["num_chunks"] = c1 - c0 + 1
    else:
        b0s = list(cols["b0"])
        b1s = list(cols["b1"])
        c0s = [b // k for b in b0s]
        c1s = [b // k for b in b1s]
        cols["c0"] = _make_column("q", c0s)
        cols["c1"] = _make_column("q", c1s)
        cols["num_chunks"] = _make_column(
            "q", [hi - lo + 1 for lo, hi in zip(c0s, c1s)]
        )
    return PackedTrace(chunk_bytes, cols, len(packed))


class PackedTraceBuilder:
    """Streaming constructor of :class:`PackedTrace`: append + finalize.

    ``append`` buffers the four source fields of one request in plain
    lists; every ``flush_every`` rows the buffers are lowered into
    fixed-width storage (numpy blocks, or ``array.array`` columns in the
    fallback lane).  Building a 10M-request trace therefore holds at
    most ``flush_every`` boxed values at a time plus the 8-byte-per-field
    packed payload — never a list of ``Request`` objects.

    ``finalize`` concatenates the blocks, stable-sorts by timestamp when
    appends arrived out of order (the same tie behaviour as
    ``list.sort(key=lambda r: r.t)`` on materialized requests, so a
    streamed trace is byte-identical to packing the object trace),
    derives the chunk columns and returns the trace.  A builder is
    single-use: ``append`` after ``finalize`` raises.
    """

    __slots__ = (
        "chunk_bytes",
        "_flush_every",
        "_ts",
        "_videos",
        "_b0s",
        "_b1s",
        "_store",
        "_n",
        "_sorted",
        "_prev_t",
        "_finalized",
    )

    def __init__(
        self,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        flush_every: int = 65536,
    ) -> None:
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.chunk_bytes = chunk_bytes
        self._flush_every = flush_every
        self._ts: List[float] = []
        self._videos: List[int] = []
        self._b0s: List[int] = []
        self._b1s: List[int] = []
        if _np is not None:
            # list of (t, video, b0, b1) array blocks, concatenated once
            self._store: object = []
        else:
            import array as _array

            self._store = (
                _array.array("d"),
                _array.array("q"),
                _array.array("q"),
                _array.array("q"),
            )
        self._n = 0
        self._sorted = True
        self._prev_t = float("-inf")
        self._finalized = False

    def __len__(self) -> int:
        return self._n

    def append(self, t: float, video: int, b0: int, b1: int) -> None:
        """Buffer one request; raises on invalid byte ranges."""
        if self._finalized:
            raise RuntimeError("PackedTraceBuilder already finalized")
        if b0 < 0 or b1 < b0:
            raise ValueError(f"invalid byte range [{b0}, {b1}] at index {self._n}")
        if t < self._prev_t:
            self._sorted = False
        self._prev_t = t
        self._ts.append(t)
        self._videos.append(video)
        self._b0s.append(b0)
        self._b1s.append(b1)
        self._n += 1
        if len(self._ts) >= self._flush_every:
            self._flush()

    def extend(self, requests: Iterable[Request]) -> None:
        """Buffer a request iterable (objects or ``(t, video, b0, b1)``)."""
        append = self.append
        for r in requests:
            append(r.t, r.video, r.b0, r.b1)

    def _flush(self) -> None:
        ts, videos, b0s, b1s = self._ts, self._videos, self._b0s, self._b1s
        if not ts:
            return
        if max(b1s) >= _INT64_MAX or max(map(abs, videos)) >= _INT64_MAX:
            raise OverflowError("trace values exceed the packed int64 range")
        if _np is not None:
            self._store.append(
                (
                    _np.asarray(ts, dtype=_np.float64),
                    _np.asarray(videos, dtype=_np.int64),
                    _np.asarray(b0s, dtype=_np.int64),
                    _np.asarray(b1s, dtype=_np.int64),
                )
            )
        else:
            cols = self._store
            cols[0].extend(ts)
            cols[1].extend(videos)
            cols[2].extend(b0s)
            cols[3].extend(b1s)
        self._ts = []
        self._videos = []
        self._b0s = []
        self._b1s = []

    def finalize(self) -> PackedTrace:
        """Lower the buffered requests into a time-ordered trace."""
        if self._finalized:
            raise RuntimeError("PackedTraceBuilder already finalized")
        self._flush()
        self._finalized = True
        k = self.chunk_bytes
        n = self._n
        if _np is not None:
            blocks = self._store
            self._store = []
            if blocks:
                t_arr = _np.concatenate([b[0] for b in blocks])
                video_arr = _np.concatenate([b[1] for b in blocks])
                b0_arr = _np.concatenate([b[2] for b in blocks])
                b1_arr = _np.concatenate([b[3] for b in blocks])
            else:
                t_arr = _np.empty(0, dtype=_np.float64)
                video_arr = _np.empty(0, dtype=_np.int64)
                b0_arr = _np.empty(0, dtype=_np.int64)
                b1_arr = _np.empty(0, dtype=_np.int64)
            if not self._sorted:
                order = _np.argsort(t_arr, kind="stable")
                t_arr = t_arr[order]
                video_arr = video_arr[order]
                b0_arr = b0_arr[order]
                b1_arr = b1_arr[order]
            c0_arr = b0_arr // k
            c1_arr = b1_arr // k
            cols: Dict[str, object] = {
                "t": t_arr,
                "video": video_arr,
                "b0": b0_arr,
                "b1": b1_arr,
                "c0": c0_arr,
                "c1": c1_arr,
                "num_bytes": b1_arr - b0_arr + 1,
                "num_chunks": c1_arr - c0_arr + 1,
            }
            return PackedTrace(k, cols, n)

        import array as _array

        ts, videos, b0s, b1s = self._store
        self._store = ()
        if not self._sorted:
            order = sorted(range(n), key=ts.__getitem__)
            ts = _array.array("d", map(ts.__getitem__, order))
            videos = _array.array("q", map(videos.__getitem__, order))
            b0s = _array.array("q", map(b0s.__getitem__, order))
            b1s = _array.array("q", map(b1s.__getitem__, order))
        c0s = [b // k for b in b0s]
        c1s = [b // k for b in b1s]
        cols = {
            "t": memoryview(ts),
            "video": memoryview(videos),
            "b0": memoryview(b0s),
            "b1": memoryview(b1s),
            "c0": _make_column("q", c0s),
            "c1": _make_column("q", c1s),
            "num_bytes": _make_column(
                "q", [hi - lo + 1 for lo, hi in zip(b0s, b1s)]
            ),
            "num_chunks": _make_column(
                "q", [hi - lo + 1 for lo, hi in zip(c0s, c1s)]
            ),
        }
        return PackedTrace(k, cols, n)
