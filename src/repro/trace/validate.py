"""Trace validation: catch malformed request logs before replay.

Real anonymized CDN logs arrive with glitches — clock skew, truncated
ranges, inconsistent file sizes.  The replay engine enforces only time
order (its correctness requirement); this module performs the full
pre-flight check and either reports or repairs, so external traces can
be loaded through :mod:`repro.trace.io` with confidence.

Checks:

* time order (non-decreasing arrival timestamps);
* byte-range sanity (``0 <= b0 <= b1``) — normally unrepresentable via
  :class:`~repro.trace.requests.Request`, but checked for records built
  by other means;
* per-video size consistency: a request reaching far beyond the
  largest extent ever observed *earlier* for that video is suspicious
  (sudden growth is fine — uploads grow — but the check surfaces IDs
  whose extents disagree wildly, a symptom of ID collisions after
  anonymization);
* duplicate records (identical timestamp, video and range) beyond a
  threshold, a symptom of log duplication.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from repro.trace.requests import Request

__all__ = ["TraceIssue", "ValidationReport", "validate_trace", "repair_trace"]


@dataclass(frozen=True, slots=True)
class TraceIssue:
    """One problem found in a trace."""

    index: int
    kind: str
    detail: str


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_trace`."""

    num_requests: int = 0
    issues: List[TraceIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def by_kind(self) -> Counter:
        return Counter(issue.kind for issue in self.issues)

    def summary(self) -> str:
        if self.ok:
            return f"{self.num_requests} requests, no issues"
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.by_kind().items()))
        return f"{self.num_requests} requests, {len(self.issues)} issues ({kinds})"


def validate_trace(
    requests: Sequence[Request],
    size_jump_factor: float = 1000.0,
    duplicate_threshold: int = 2,
    max_issues: int = 10_000,
) -> ValidationReport:
    """Scan a trace and report every problem found (up to ``max_issues``).

    ``size_jump_factor``: flag a request whose end offset exceeds the
    video's previously observed extent by more than this factor (with a
    1 MB floor so small videos don't trip it).  ``duplicate_threshold``:
    flag the N-th and later identical records.
    """
    if size_jump_factor <= 1.0:
        raise ValueError("size_jump_factor must exceed 1")
    if duplicate_threshold < 1:
        raise ValueError("duplicate_threshold must be >= 1")

    report = ValidationReport(num_requests=len(requests))
    extents: dict[int, int] = {}
    seen: Counter = Counter()
    last_t = float("-inf")

    def add(index: int, kind: str, detail: str) -> None:
        if len(report.issues) < max_issues:
            report.issues.append(TraceIssue(index, kind, detail))

    for i, r in enumerate(requests):
        if r.t < last_t:
            add(i, "time-order", f"t={r.t} after t={last_t}")
        last_t = max(last_t, r.t)

        if r.b0 < 0 or r.b1 < r.b0:
            add(i, "byte-range", f"[{r.b0}, {r.b1}]")
            continue

        prior = extents.get(r.video)
        if prior is not None:
            threshold = max(prior * size_jump_factor, prior + (1 << 20))
            if r.b1 + 1 > threshold:
                add(
                    i,
                    "size-jump",
                    f"video {r.video}: extent {prior} -> {r.b1 + 1}",
                )
        extents[r.video] = max(prior or 0, r.b1 + 1)

        key = (r.t, r.video, r.b0, r.b1)
        seen[key] += 1
        if seen[key] >= duplicate_threshold + 1:
            add(i, "duplicate", f"{key} seen {seen[key]} times")

    return report


def repair_trace(requests: Iterable[Request]) -> List[Request]:
    """Best-effort repair: drop malformed records, restore time order.

    Intended for external logs; synthetic traces never need it.  The
    repair is conservative — it only drops records that the replay
    engine or the caches would reject, and stably re-sorts by time.
    """
    kept = []
    for r in requests:
        if r.b0 < 0 or r.b1 < r.b0:
            continue
        kept.append(r)
    kept.sort(key=lambda r: r.t)
    return kept
