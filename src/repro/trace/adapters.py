"""Adapters from common CDN log formats to :class:`Request`.

The repository's native formats (``repro.trace.io``) are already
scrubbed; real deployments start from HTTP access logs.  This module
parses the two shapes such logs usually take once anonymized:

* **CLF-with-Range** — combined-log-format lines whose request line
  carries the video path and that log the ``Range:`` header, e.g.::

      - - [13/Apr/2014:09:21:30 +0000] "GET /videos/123456 HTTP/1.1" \
206 2097152 "bytes=0-2097151"

* **TSV key-value** — tab-separated ``ts``/``video``/``range`` records
  (epoch seconds, opaque integer ID, ``start-end`` inclusive range).

Both parsers are streaming, skip-and-count malformed lines rather than
failing the whole file, and emit requests in file order — run
:func:`repro.trace.validate.validate_trace` (or ``repro-validate``)
afterwards, since access logs are frequently time-skewed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Iterable, Iterator, List, Optional

from repro.trace.requests import Request

__all__ = ["ParseStats", "parse_clf_range_line", "read_clf_log", "read_tsv_log"]

_CLF_PATTERN = re.compile(
    r"""
    ^\S+\s+\S+\s+                       # anonymized host + ident/user
    \[(?P<time>[^\]]+)\]\s+             # [13/Apr/2014:09:21:30 +0000]
    "(?:GET|HEAD)\s+ (?P<path>\S+) \s+ HTTP/[\d.]+"\s+
    (?P<status>\d{3})\s+ \S+            # status, size (unused)
    (?:\s+"bytes=(?P<b0>\d+)-(?P<b1>\d+)")?   # optional Range header
    """,
    re.VERBOSE,
)

_VIDEO_ID_PATTERN = re.compile(r"(\d+)(?:\?|$)")

_CLF_TIME_FORMAT = "%d/%b/%Y:%H:%M:%S %z"

#: requests without a Range header are whole-file fetches; without a
#: size catalog the adapter caps them at this many bytes
DEFAULT_WHOLE_FILE_BYTES = 32 * 1024 * 1024


@dataclass
class ParseStats:
    """What a log parse kept and dropped."""

    parsed: int = 0
    skipped: int = 0
    #: first few offending lines for diagnostics
    examples: List[str] = field(default_factory=list)

    def note_skip(self, line: str, keep: int = 5) -> None:
        self.skipped += 1
        if len(self.examples) < keep:
            self.examples.append(line.rstrip()[:160])


def parse_clf_range_line(
    line: str,
    epoch: Optional[float] = None,
    whole_file_bytes: int = DEFAULT_WHOLE_FILE_BYTES,
) -> Optional[Request]:
    """Parse one CLF line into a Request; None when unusable.

    ``epoch``: subtract this UNIX timestamp so trace time starts near
    zero (defaults to keeping absolute UNIX time).  Only 2xx GET/HEAD
    lines with a parseable numeric video ID are kept.
    """
    match = _CLF_PATTERN.match(line)
    if match is None:
        return None
    if not match.group("status").startswith("2"):
        return None
    id_match = _VIDEO_ID_PATTERN.search(match.group("path"))
    if id_match is None:
        return None
    try:
        stamp = datetime.strptime(match.group("time"), _CLF_TIME_FORMAT)
    except ValueError:
        return None
    t = stamp.astimezone(timezone.utc).timestamp()
    if epoch is not None:
        t -= epoch
    if match.group("b0") is not None:
        b0, b1 = int(match.group("b0")), int(match.group("b1"))
        if b1 < b0:
            return None
    else:
        b0, b1 = 0, whole_file_bytes - 1
    return Request(t=t, video=int(id_match.group(1)), b0=b0, b1=b1)


def read_clf_log(
    lines: Iterable[str],
    epoch: Optional[float] = None,
    whole_file_bytes: int = DEFAULT_WHOLE_FILE_BYTES,
    stats: Optional[ParseStats] = None,
) -> Iterator[Request]:
    """Stream Requests out of CLF lines, counting skips in ``stats``."""
    for line in lines:
        if not line.strip():
            continue
        request = parse_clf_range_line(
            line, epoch=epoch, whole_file_bytes=whole_file_bytes
        )
        if request is None:
            if stats is not None:
                stats.note_skip(line)
            continue
        if stats is not None:
            stats.parsed += 1
        yield request


def read_tsv_log(
    lines: Iterable[str],
    stats: Optional[ParseStats] = None,
) -> Iterator[Request]:
    """Stream Requests from ``ts<TAB>video<TAB>start-end`` records."""
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        request = _parse_tsv(line)
        if request is None:
            if stats is not None:
                stats.note_skip(line)
            continue
        if stats is not None:
            stats.parsed += 1
        yield request


def _parse_tsv(line: str) -> Optional[Request]:
    parts = line.split("\t")
    if len(parts) != 3:
        return None
    try:
        t = float(parts[0])
        video = int(parts[1])
        b0_s, b1_s = parts[2].split("-", 1)
        b0, b1 = int(b0_s), int(b1_s)
    except ValueError:
        return None
    if b0 < 0 or b1 < b0:
        return None
    return Request(t=t, video=video, b0=b0, b1=b1)
