"""Fleet traces: per-edge packed shards plus a global time-merge plan.

The CDN-wide experiments replay one trace *per edge server*, merged
into a single time-ordered stream.  The object lane does this with
``heapq.merge`` — one tuple allocation and one heap sift per request.
:class:`FleetTrace` precomputes the merged order **once**, vectorized,
and stores it as run-length segments: a maximal run of consecutive
same-edge entries in the merged stream always covers *consecutive*
positions of that edge's shard (within one shard the merge keys are
strictly increasing), so the whole permutation compresses to
``(edge, start, stop)`` triples.  The packed CDN lane replays run by
run, batching each run through the edge cache's ``handle_span`` hot
path.

The tie order is exactly ``heapq.merge``'s over the object lane's
``(t, index-within-trace, edge-name)`` keys, so a packed fleet replay
visits requests in the byte-identical order.

:meth:`FleetTrace.to_shared` exports every shard via
:meth:`PackedTrace.to_shared` and returns a tiny picklable
:class:`SharedFleetHandle`; sweep workers :meth:`attach
<SharedFleetHandle.attach>` zero-copy and recompute the (cheap,
vectorized) merge plan locally instead of shipping it.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.trace.columnar import _np, PackedTrace, SharedTraceHandle, _make_column
from repro.trace.requests import Request

__all__ = ["FleetTrace", "SharedFleetHandle"]

#: (edge index, shard start, shard stop) triples in merged-stream order.
MergeRuns = Tuple[List[int], List[int], List[int]]


class FleetTrace:
    """Per-edge :class:`PackedTrace` shards + the merged replay order.

    ``shards`` maps edge-server name to its packed user trace; iteration
    order of the mapping is preserved and defines the edge indices used
    in :meth:`merge_runs`.  ``validate=True`` checks each shard for time
    order up front (vectorized under numpy), raising the same
    edge-and-index error the simulator's object lane produces.
    """

    __slots__ = ("shards", "names", "_runs")

    def __init__(
        self, shards: Mapping[str, PackedTrace], validate: bool = True
    ) -> None:
        if not shards:
            raise ValueError("FleetTrace needs at least one edge shard")
        for name, shard in shards.items():
            if not isinstance(shard, PackedTrace):
                raise TypeError(
                    f"shard for edge {name!r} must be a PackedTrace, "
                    f"got {type(shard).__name__}"
                )
        self.shards: Dict[str, PackedTrace] = dict(shards)
        self.names: Tuple[str, ...] = tuple(self.shards)
        if validate:
            for name, shard in self.shards.items():
                _check_time_order(name, shard)
        self._runs: Optional[MergeRuns] = None

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards.values())

    def __repr__(self) -> str:
        return (
            f"FleetTrace({len(self.names)} edges, {len(self)} requests, "
            f"runs={'cached' if self._runs is not None else 'lazy'})"
        )

    def merge_runs(self) -> MergeRuns:
        """The merged replay order as ``(edge, start, stop)`` run triples.

        Returned as three parallel lists (edge index into
        :attr:`names`, shard start position, shard stop position).
        Computed lazily and cached; the order replicates
        ``heapq.merge`` over ``(t, position, name)`` keys exactly.
        """
        if self._runs is None:
            self._runs = self._compute_runs()
        return self._runs

    def _compute_runs(self) -> MergeRuns:
        # Tie-break rank: the object lane compares edge *names* after
        # (t, position), so rank is the name's position in sorted order.
        name_rank = {name: r for r, name in enumerate(sorted(self.names))}
        total = len(self)
        if total == 0:
            return ([], [], [])
        if _np is not None:
            ts = _np.empty(total, dtype=_np.float64)
            pos = _np.empty(total, dtype=_np.int64)
            rank = _np.empty(total, dtype=_np.int64)
            eid = _np.empty(total, dtype=_np.int64)
            offset = 0
            for e, name in enumerate(self.names):
                shard = self.shards[name]
                m = len(shard)
                if m == 0:
                    continue
                ts[offset : offset + m] = shard.column("t")
                pos[offset : offset + m] = _np.arange(m, dtype=_np.int64)
                rank[offset : offset + m] = name_rank[name]
                eid[offset : offset + m] = e
                offset += m
            order = _np.lexsort((rank, pos, ts))
            eseq = eid[order]
            pseq = pos[order]
            change = _np.flatnonzero(eseq[1:] != eseq[:-1]) + 1
            starts = _np.concatenate(
                (_np.zeros(1, dtype=change.dtype), change)
            )
            ends = _np.concatenate(
                (change, _np.asarray([total], dtype=change.dtype))
            )
            run_edge = eseq[starts].tolist()
            run_start = pseq[starts].tolist()
            run_stop = [
                s + length
                for s, length in zip(run_start, (ends - starts).tolist())
            ]
            return (run_edge, run_start, run_stop)

        def stream(e: int, name: str, shard: PackedTrace):
            r = name_rank[name]
            tcol = shard.column("t")
            for i in range(len(shard)):
                yield (tcol[i], i, r, e)

        streams = [
            stream(e, name, self.shards[name])
            for e, name in enumerate(self.names)
        ]
        run_edge: List[int] = []
        run_start: List[int] = []
        run_stop: List[int] = []
        last_e = -1
        for _t, i, _r, e in heapq.merge(*streams):
            if e != last_e:
                run_edge.append(e)
                run_start.append(i)
                run_stop.append(i + 1)
                last_e = e
            else:
                run_stop[-1] = i + 1
        return (run_edge, run_start, run_stop)

    def merged(self) -> Iterator[Tuple[str, Request]]:
        """Yield ``(edge name, Request)`` in merged replay order.

        The object-compatible view of the precomputed plan — used by
        equivalence tests and debugging, not by the hot path.
        """
        run_edge, run_start, run_stop = self.merge_runs()
        for e, start, stop in zip(run_edge, run_start, run_stop):
            name = self.names[e]
            shard = self.shards[name]
            for i in range(start, stop):
                yield name, shard[i]

    # -- shared memory -------------------------------------------------------

    def to_shared(self) -> "SharedFleetHandle":
        """Export every shard to shared memory; returns a picklable handle.

        The caller owns the segments and must
        :meth:`SharedFleetHandle.unlink` them.  Empty shards (which
        ``SharedMemory`` cannot hold) are carried as metadata and
        reconstructed empty on attach.  The merge plan is *not*
        shipped: recomputing it on attach is vectorized and cheap
        relative to copying the permutation through ``/dev/shm``.
        """
        edges: List[Tuple[str, Optional[SharedTraceHandle], int, int]] = []
        try:
            for name, shard in self.shards.items():
                handle = shard.to_shared() if len(shard) else None
                edges.append((name, handle, shard.chunk_bytes, len(shard)))
        except BaseException:
            for _name, handle, _k, _m in edges:
                if handle is not None:
                    handle.unlink()
            raise
        return SharedFleetHandle(tuple(edges))

    def close(self) -> None:
        """Release attached shard mappings (no-op for local traces)."""
        for shard in self.shards.values():
            shard.close()


class SharedFleetHandle:
    """Picklable reference to a :class:`FleetTrace` in shared memory.

    One :class:`SharedTraceHandle` per non-empty shard; pickles to a few
    dozen bytes per edge regardless of trace length.
    """

    __slots__ = ("edges",)

    def __init__(
        self,
        edges: Tuple[Tuple[str, Optional[SharedTraceHandle], int, int], ...],
    ) -> None:
        self.edges = edges

    def __getstate__(self):
        return self.edges

    def __setstate__(self, state) -> None:
        self.edges = state

    def __len__(self) -> int:
        return sum(length for _name, _handle, _k, length in self.edges)

    def __repr__(self) -> str:
        return (
            f"SharedFleetHandle({len(self.edges)} edges, "
            f"{len(self)} requests)"
        )

    def attach(self) -> FleetTrace:
        """Map every shard segment and view them as a :class:`FleetTrace`.

        Shards were validated before export, so the attached fleet
        skips re-validation.  Call :meth:`FleetTrace.close` when done.
        """
        shards: Dict[str, PackedTrace] = {}
        for name, handle, chunk_bytes, _length in self.edges:
            if handle is None:
                shards[name] = _empty_trace(chunk_bytes)
            else:
                shards[name] = handle.attach()
        return FleetTrace(shards, validate=False)

    def close(self) -> None:
        """Release creator-side mappings without destroying the segments."""
        for _name, handle, _k, _m in self.edges:
            if handle is not None:
                handle.close()

    def unlink(self) -> None:
        """Destroy every shard segment (idempotent, parent-side)."""
        for _name, handle, _k, _m in self.edges:
            if handle is not None:
                handle.unlink()


def _empty_trace(chunk_bytes: int) -> PackedTrace:
    cols = {
        name: _make_column(typecode, [])
        for name, typecode in (
            ("t", "d"),
            ("video", "q"),
            ("b0", "q"),
            ("b1", "q"),
            ("c0", "q"),
            ("c1", "q"),
            ("num_bytes", "q"),
            ("num_chunks", "q"),
        )
    }
    return PackedTrace(chunk_bytes, cols, 0)


def _check_time_order(name: str, shard: PackedTrace) -> None:
    """Raise the simulator's edge-and-index error on disorder."""
    n = len(shard)
    if n < 2:
        return
    col = shard.column("t")
    if _np is not None and isinstance(col, _np.ndarray):
        bad = _np.flatnonzero(col[1:] < col[:-1])
        if bad.size:
            i = int(bad[0]) + 1
            raise ValueError(
                f"trace for edge {name!r} not time-ordered at "
                f"index {i}: t={col[i]} after t={col[i - 1]}"
            )
        return
    prev = col[0]
    for i in range(1, n):
        t = col[i]
        if t < prev:
            raise ValueError(
                f"trace for edge {name!r} not time-ordered at "
                f"index {i}: t={t} after t={prev}"
            )
        prev = t
