"""Trace serialization: CSV and JSONL, optionally gzip-compressed.

The on-disk formats mirror what anonymized CDN request logs look like
after scrubbing: one record per request with a timestamp, an opaque
integer video ID and an inclusive byte range.  Readers stream; they
never materialize the file in memory, so month-long traces can be
replayed from disk.
"""

from __future__ import annotations

import csv
import gzip
import io
import json
from pathlib import Path
from typing import IO, Iterable, Iterator, Union

from repro.trace.requests import Request

__all__ = [
    "read_trace_csv",
    "read_trace_jsonl",
    "write_trace_csv",
    "write_trace_jsonl",
]

_CSV_HEADER = ["t", "video", "b0", "b1"]

PathLike = Union[str, Path]


def _open_text(path: PathLike, mode: str) -> IO[str]:
    """Open a possibly .gz path in text mode."""
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"))  # type: ignore[arg-type]
    return open(path, mode, newline="")


def write_trace_csv(path: PathLike, requests: Iterable[Request]) -> int:
    """Write requests as CSV (gzip if the path ends in .gz).

    Returns the number of records written.
    """
    count = 0
    with _open_text(path, "w") as fh:
        writer = csv.writer(fh)
        writer.writerow(_CSV_HEADER)
        for r in requests:
            writer.writerow([repr(r.t), r.video, r.b0, r.b1])
            count += 1
    return count


def read_trace_csv(path: PathLike) -> Iterator[Request]:
    """Stream requests from a CSV trace written by :func:`write_trace_csv`."""
    with _open_text(path, "r") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != _CSV_HEADER:
            raise ValueError(f"unexpected trace header {header!r} in {path}")
        for row in reader:
            if not row:
                continue
            t, video, b0, b1 = row
            yield Request(float(t), int(video), int(b0), int(b1))


def write_trace_jsonl(path: PathLike, requests: Iterable[Request]) -> int:
    """Write requests as JSON Lines (gzip if the path ends in .gz)."""
    count = 0
    with _open_text(path, "w") as fh:
        for r in requests:
            fh.write(
                json.dumps({"t": r.t, "video": r.video, "b0": r.b0, "b1": r.b1})
            )
            fh.write("\n")
            count += 1
    return count


def read_trace_jsonl(path: PathLike) -> Iterator[Request]:
    """Stream requests from a JSONL trace."""
    with _open_text(path, "r") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            yield Request(
                float(rec["t"]), int(rec["video"]), int(rec["b0"]), int(rec["b1"])
            )
