"""Popularity turnover: measuring "transient demand patterns" (§1).

The paper's premise is that the popular set churns — "an increasingly
large catalog of videos" with "transient demand patterns" — which is
why per-server pull-based caching beats static placement.  This module
measures that churn in any trace: split the trace into windows, take
each window's top-K videos by requested bytes, and report the overlap
between consecutive windows' top sets.

Low overlap (high turnover) is the regime where admission quality
matters most; the workload tests use this to confirm the synthetic
traces churn like the paper says real ones do.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.trace.requests import Request

__all__ = ["TurnoverSample", "popularity_turnover", "top_videos_by_window"]


@dataclass(frozen=True, slots=True)
class TurnoverSample:
    """Top-set comparison between two consecutive windows."""

    t_start: float
    #: |top_prev ∩ top_cur| / |top_prev ∪ top_cur|
    jaccard: float
    #: fraction of the current top set that is new vs the previous one
    new_fraction: float


def top_videos_by_window(
    requests: Sequence[Request],
    window: float,
    top_k: int,
) -> Dict[float, List[int]]:
    """Per-window top-K video IDs by requested bytes (window-aligned)."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if top_k <= 0:
        raise ValueError(f"top_k must be positive, got {top_k}")
    buckets: Dict[float, Counter] = defaultdict(Counter)
    for r in requests:
        start = (r.t // window) * window
        buckets[start][r.video] += r.num_bytes
    return {
        start: [video for video, _bytes in counter.most_common(top_k)]
        for start, counter in sorted(buckets.items())
    }


def popularity_turnover(
    requests: Sequence[Request],
    window: float = 86400.0,
    top_k: int = 50,
) -> List[TurnoverSample]:
    """Consecutive-window top-set turnover over the trace.

    Returns one sample per window transition; an empty list for traces
    spanning fewer than two windows.
    """
    tops = top_videos_by_window(requests, window, top_k)
    starts = list(tops)
    samples: List[TurnoverSample] = []
    for prev_start, cur_start in zip(starts, starts[1:]):
        prev, cur = set(tops[prev_start]), set(tops[cur_start])
        union = prev | cur
        jaccard = len(prev & cur) / len(union) if union else 1.0
        new_fraction = (
            len(cur - prev) / len(cur) if cur else 0.0
        )
        samples.append(
            TurnoverSample(
                t_start=cur_start, jaccard=jaccard, new_fraction=new_fraction
            )
        )
    return samples
