"""Trace down-sampling for the Optimal Cache experiment (Section 9.1).

The paper's Optimal (IP/LP) experiment cannot run at full scale, so the
trace is reduced exactly as described: take a short time window, keep
the requests of a representative subset of ``m`` distinct files —
"selected uniformly from the list of files sorted by their hit count" —
and cap the file size (the paper uses 100 files, a two-day window and a
20 MB cap), then size the disk to hold a given fraction of all requested
chunks in the down-sampled data (the paper uses 5%).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Optional, Sequence

from repro.trace.requests import DEFAULT_CHUNK_BYTES, Request

__all__ = ["time_window", "downsample_trace", "disk_chunks_for_fraction"]


def time_window(requests: Iterable[Request], t0: float, t1: float) -> List[Request]:
    """Requests with arrival time in ``[t0, t1)``, order preserved."""
    if t1 < t0:
        raise ValueError(f"empty window [{t0}, {t1})")
    return [r for r in requests if t0 <= r.t < t1]


def select_files_uniform_by_rank(hit_counts: Counter, m: int) -> List[int]:
    """Pick ``m`` files spread uniformly over the hit-count-sorted list.

    Sorting by hit count and striding uniformly yields a popularity-
    representative subset: it includes head, torso and tail files in
    proportion to their presence in the catalog (Section 9.1).
    """
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    ranked = [v for v, _ in hit_counts.most_common()]
    if m >= len(ranked):
        return ranked
    # Uniform positions over [0, len) — includes rank 0 and approaches
    # the tail end; strictly increasing so no duplicates.
    positions = [int(i * len(ranked) / m) for i in range(m)]
    return [ranked[p] for p in positions]


def downsample_trace(
    requests: Sequence[Request],
    num_files: int = 100,
    max_file_bytes: Optional[int] = 20 * 1024 * 1024,
    window: Optional[tuple[float, float]] = None,
) -> List[Request]:
    """Section 9.1's down-sampling: window, file subset, size cap.

    ``window`` is an optional ``(t0, t1)`` arrival-time filter applied
    first (the paper uses a two-day period).  Requests whose byte range
    lies entirely beyond the size cap are dropped; ranges straddling it
    are clipped.
    """
    pool: Sequence[Request] = (
        time_window(requests, *window) if window is not None else requests
    )
    hit_counts = Counter(r.video for r in pool)
    if not hit_counts:
        return []
    keep = set(select_files_uniform_by_rank(hit_counts, num_files))
    out: List[Request] = []
    for r in pool:
        if r.video not in keep:
            continue
        if max_file_bytes is not None:
            clipped = r.clipped(max_file_bytes)
            if clipped is None:
                continue
            r = clipped
        out.append(r)
    return out


def disk_chunks_for_fraction(
    requests: Iterable[Request],
    fraction: float = 0.05,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> int:
    """Disk size (in chunks) holding ``fraction`` of all requested chunks.

    "We select the disk size such that it can store 5% of all requested
    chunks in the down-sampled data" (Section 9.1).  Always at least 1.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    unique = set()
    for r in requests:
        unique.update(r.chunk_ids(chunk_bytes))
    return max(1, int(len(unique) * fraction))
