"""Trace characterization: the statistics the paper's workload exhibits.

The algorithms in the paper rely on specific statistical properties of
real CDN traces — a Zipf-like popularity curve with a long heavy tail
(Section 3), diurnal load (Figure 3), temporal locality, and an
intra-file skew where early chunks are requested more than late ones
(Section 2).  :class:`TraceStats` measures these from any request
sequence, which the workload tests use to validate that the synthetic
traces actually exhibit the behaviour the paper's data has.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.trace.requests import DEFAULT_CHUNK_BYTES, Request

__all__ = ["TraceStats"]


@dataclass
class TraceStats:
    """Aggregate statistics of a request trace.

    Build with :meth:`from_requests`; all counters are exact, the Zipf
    exponent is a log-log least-squares fit over the rank-frequency
    curve of per-video request counts.
    """

    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    num_requests: int = 0
    total_requested_bytes: int = 0
    t_first: float = float("inf")
    t_last: float = float("-inf")
    video_hits: Counter = field(default_factory=Counter)
    chunk_hits: Counter = field(default_factory=Counter)
    #: request count per chunk *offset within its file* (intra-file skew)
    offset_hits: Counter = field(default_factory=Counter)
    #: request count per hour-of-day bucket (diurnal profile)
    hour_hits: Counter = field(default_factory=Counter)

    @classmethod  # noqa: D102 - documented here
    def from_requests(  # one-shot constructor over an iterable of requests
        cls, requests: Iterable[Request], chunk_bytes: int = DEFAULT_CHUNK_BYTES
    ) -> "TraceStats":
        stats = cls(chunk_bytes=chunk_bytes)
        for r in requests:
            stats.add(r)
        return stats

    def add(self, r: Request) -> None:
        """Fold one request into the statistics."""
        self.num_requests += 1
        self.total_requested_bytes += r.num_bytes
        self.t_first = min(self.t_first, r.t)
        self.t_last = max(self.t_last, r.t)
        self.video_hits[r.video] += 1
        c0, c1 = r.chunks(self.chunk_bytes)
        for c in range(c0, c1 + 1):
            self.chunk_hits[(r.video, c)] += 1
            self.offset_hits[c] += 1
        self.hour_hits[int(r.t // 3600) % 24] += 1

    # -- derived quantities -------------------------------------------------

    @property
    def num_videos(self) -> int:
        """Number of distinct videos requested."""
        return len(self.video_hits)

    @property
    def num_unique_chunks(self) -> int:
        """Number of distinct ``(video, chunk)`` pairs requested."""
        return len(self.chunk_hits)

    @property
    def footprint_bytes(self) -> int:
        """Unique requested data volume — the working-set size in bytes.

        Disk sizes in the experiments are expressed relative to this.
        """
        return self.num_unique_chunks * self.chunk_bytes

    @property
    def duration(self) -> float:
        """Trace time span in seconds (0 for empty traces)."""
        if self.num_requests == 0:
            return 0.0
        return self.t_last - self.t_first

    def zipf_exponent(self, min_rank: int = 1, max_rank: Optional[int] = None) -> float:
        """Least-squares slope of log(frequency) vs log(rank), negated.

        A value near 0.8–1.2 is typical of video-on-demand popularity.
        Requires at least 3 distinct videos.
        """
        counts = np.array(sorted(self.video_hits.values(), reverse=True), dtype=float)
        if max_rank is not None:
            counts = counts[:max_rank]
        counts = counts[min_rank - 1 :]
        if counts.size < 3:
            raise ValueError("need at least 3 ranks for a Zipf fit")
        ranks = np.arange(min_rank, min_rank + counts.size, dtype=float)
        slope, _ = np.polyfit(np.log(ranks), np.log(counts), 1)
        return float(-slope)

    def head_concentration(self, fraction: float = 0.1) -> float:
        """Share of requests going to the top ``fraction`` of videos.

        Heavy-tailed workloads concentrate most hits in a small head;
        e.g. the top 10% of videos drawing >50% of requests.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        counts = sorted(self.video_hits.values(), reverse=True)
        if not counts:
            return 0.0
        head = max(1, int(len(counts) * fraction))
        return sum(counts[:head]) / self.num_requests

    def single_hit_fraction(self) -> float:
        """Fraction of videos requested exactly once — the long tail.

        The paper notes files "on the borderline of caching ... usually
        have very few accesses in their lifetime in the cache".
        """
        if not self.video_hits:
            return 0.0
        ones = sum(1 for c in self.video_hits.values() if c == 1)
        return ones / len(self.video_hits)

    def early_chunk_bias(self, prefix_chunks: int = 2) -> float:
        """Mean hits of the first ``prefix_chunks`` offsets over the rest.

        Values > 1 confirm the intra-file skew of Section 2: "the first
        segments of the video often receive the highest number of hits".
        Returns ``inf`` when no hits land beyond the prefix.
        """
        head = [self.offset_hits[c] for c in range(prefix_chunks)]
        tail = [v for c, v in self.offset_hits.items() if c >= prefix_chunks]
        if not head or sum(head) == 0:
            return 0.0
        if not tail:
            return float("inf")
        return (sum(head) / len(head)) / (sum(tail) / len(tail))

    def diurnal_peak_to_trough(self) -> float:
        """Max over min hourly request counts (inf if an hour is empty).

        Values well above 1 indicate the diurnal pattern of Figure 3.
        """
        if not self.hour_hits:
            return 0.0
        hourly = [self.hour_hits.get(h, 0) for h in range(24)]
        low = min(hourly)
        if low == 0:
            return float("inf")
        return max(hourly) / low

    def summary(self) -> dict:
        """A plain-dict summary suitable for printing or JSON dumping."""
        out = {
            "requests": self.num_requests,
            "videos": self.num_videos,
            "unique_chunks": self.num_unique_chunks,
            "requested_gb": self.total_requested_bytes / 1e9,
            "footprint_gb": self.footprint_bytes / 1e9,
            "duration_days": self.duration / 86400.0,
            "single_hit_fraction": self.single_hit_fraction(),
            "top10pct_share": self.head_concentration(0.1),
        }
        if self.num_videos >= 3:
            out["zipf_exponent"] = self.zipf_exponent()
        return out
