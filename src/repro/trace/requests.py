"""The request and chunk model of Section 4.

A request ``R`` carries a video ID ``R.v``, an inclusive byte range
``[R.b0, R.b1]`` and an arrival timestamp ``R.t``.  The server either
fully serves or fully redirects a requested byte range; partial caching
is supported by dividing files into fixed-size chunks of ``K`` bytes, so
the chunk range of a request is ``[floor(b0 / K), floor(b1 / K)]``
(``b1`` inclusive).  A chunk is uniquely identified by the pair
``(video ID, chunk number)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "ChunkId",
    "Request",
    "chunk_range",
    "request_chunks",
]

#: The paper's chunk size: 2 MB (Section 4 / Section 9).
DEFAULT_CHUNK_BYTES = 2 * 1024 * 1024

#: A chunk is identified by (video ID, chunk number).
ChunkId = Tuple[int, int]


def chunk_range(
    b0: int, b1: int, chunk_bytes: int = DEFAULT_CHUNK_BYTES
) -> Tuple[int, int]:
    """Map an inclusive byte range to an inclusive chunk range.

    ``[R.c0, R.c1] = [floor(R.b0 / K), floor(R.b1 / K)]`` — the last
    chunk is the one containing byte ``b1``.
    """
    if b0 < 0 or b1 < b0:
        raise ValueError(f"invalid byte range [{b0}, {b1}]")
    if chunk_bytes <= 0:
        raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
    return b0 // chunk_bytes, b1 // chunk_bytes


@dataclass(frozen=True, slots=True)
class Request:
    """One video request: arrival time, video ID, inclusive byte range."""

    t: float
    video: int
    b0: int
    b1: int

    def __post_init__(self) -> None:
        if self.b0 < 0 or self.b1 < self.b0:
            raise ValueError(f"invalid byte range [{self.b0}, {self.b1}]")

    @property
    def num_bytes(self) -> int:
        """Requested bytes, ``b1 - b0 + 1`` (range is inclusive)."""
        return self.b1 - self.b0 + 1

    def chunks(self, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> Tuple[int, int]:
        """Inclusive chunk range ``[c0, c1]`` covered by this request."""
        return chunk_range(self.b0, self.b1, chunk_bytes)

    def num_chunks(self, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> int:
        """Number of chunks covered, ``|R|_c`` in the paper's notation."""
        c0, c1 = self.chunks(chunk_bytes)
        return c1 - c0 + 1

    def chunk_ids(self, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> Iterator[ChunkId]:
        """Iterate the ``(video, chunk_number)`` IDs covered."""
        c0, c1 = self.chunks(chunk_bytes)
        for c in range(c0, c1 + 1):
            yield (self.video, c)

    def clipped(self, max_bytes: int) -> "Request | None":
        """Clip the byte range to a file-size cap (Section 9.1's 20 MB cap).

        Returns a new request with ``b1`` clipped to ``max_bytes - 1``,
        or None if the whole range lies beyond the cap.
        """
        if self.b0 >= max_bytes:
            return None
        return Request(self.t, self.video, self.b0, min(self.b1, max_bytes - 1))


def request_chunks(
    request: Request, chunk_bytes: int = DEFAULT_CHUNK_BYTES
) -> list[ChunkId]:
    """The chunk-ID list ``S`` of a request (Section 6's notation)."""
    return list(request.chunk_ids(chunk_bytes))
