"""Command-line entry points.

Six commands are installed by the package:

* ``repro-gen`` — synthesize a server trace and write it to CSV/JSONL;
* ``repro-sim`` — replay a trace file through one algorithm
  (``--telemetry out.jsonl`` exports structured run telemetry);
* ``repro-experiment`` — run the paper-figure experiments;
* ``repro-validate`` — validate (and optionally repair) a trace file;
* ``repro-verify`` — differentially verify the fast cache
  implementations against their reference oracles on adversarial
  fuzz traces (see :mod:`repro.verify`);
* ``repro-report`` — render and compare telemetry JSONL exports
  (see :mod:`repro.obs.report`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.tables import format_table
from repro.experiments import ALL_FIGURES, scale_from_env
from repro.sim.engine import replay
from repro.sim.runner import CACHE_FACTORIES, build_cache
from repro.trace.io import (
    read_trace_csv,
    read_trace_jsonl,
    write_trace_csv,
    write_trace_jsonl,
)
from repro.trace.stats import TraceStats
from repro.workload.generator import TraceGenerator
from repro.workload.servers import SERVER_PROFILES

__all__ = [
    "main_gen",
    "main_sim",
    "main_experiment",
    "main_validate",
    "main_verify",
    "main_report",
]


def _read_trace(path: str):
    if ".jsonl" in path:
        return read_trace_jsonl(path)
    return read_trace_csv(path)


def main_gen(argv: Optional[Sequence[str]] = None) -> int:
    """Generate a synthetic server trace."""
    parser = argparse.ArgumentParser(
        prog="repro-gen", description=main_gen.__doc__
    )
    parser.add_argument(
        "--server",
        choices=sorted(SERVER_PROFILES),
        default="europe",
        help="regional server profile",
    )
    parser.add_argument("--days", type=float, default=30.0, help="trace length")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiplier on catalog size and session volume",
    )
    parser.add_argument("--seed", type=int, default=None, help="override profile seed")
    parser.add_argument(
        "--stats", action="store_true", help="print trace statistics after writing"
    )
    parser.add_argument("output", help="output path (.csv/.jsonl, .gz ok)")
    args = parser.parse_args(argv)

    profile = SERVER_PROFILES[args.server].scaled(args.scale)
    trace = TraceGenerator(profile, seed=args.seed).generate(days=args.days)
    if ".jsonl" in args.output:
        count = write_trace_jsonl(args.output, trace)
    else:
        count = write_trace_csv(args.output, trace)
    print(f"wrote {count} requests to {args.output}")
    if args.stats:
        stats = TraceStats.from_requests(trace)
        for key, value in stats.summary().items():
            print(f"  {key}: {value}")
    return 0


def _profiled(top_n, fn):
    """Run ``fn()``, under cProfile when ``top_n`` is not None.

    Shared by the single-cache and fleet lanes of ``repro-sim`` so
    ``--profile`` attributes time in whichever replay actually ran.
    """
    if top_n is None:
        return fn()
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.strip_dirs().sort_stats("cumulative").print_stats(top_n)
    return result


def _sim_fleet(args, requests, progress) -> int:
    """Replay ``requests`` through the packed-batched fleet lane.

    The trace is sharded round-robin across ``args.fleet_edges`` edge
    caches (a subsequence of a time-ordered trace stays time-ordered)
    behind one parent sized to the aggregate edge capacity, and the
    whole fleet replays through ``CdnSimulator``'s batched packed
    path — the lane ``--profile`` previously could not reach.
    """
    from repro.cdn.multiserver import CdnSimulator
    from repro.cdn.topology import hierarchy
    from repro.trace.columnar import pack_trace
    from repro.trace.fleet import FleetTrace

    edges = args.fleet_edges
    names = [f"edge{i:02d}" for i in range(edges)]
    split: dict = {name: [] for name in names}
    for i, request in enumerate(requests):
        split[names[i % edges]].append(request)
    fleet = FleetTrace(
        {name: pack_trace(shard) for name, shard in split.items()},
        validate=False,
    )

    edge_caches = {
        name: build_cache(args.algorithm, args.disk_chunks, alpha_f2r=args.alpha)
        for name in names
    }
    parent = build_cache(
        args.algorithm, args.disk_chunks * edges, alpha_f2r=args.alpha
    )
    simulator = CdnSimulator(hierarchy(edge_caches, parent))
    result = _profiled(args.profile, lambda: simulator.run(
        fleet, interval=args.interval, progress=progress,
    ))

    rows = []
    for name in [*names, "parent"]:
        summary = result.summary(name)
        rows.append(
            {"server": name, "efficiency": summary.efficiency,
             "redirect_ratio": summary.redirect_ratio,
             "ingress_fraction": summary.ingress_fraction,
             "requests": summary.num_requests}
        )
    title = (
        f"fleet: {edges} x {args.algorithm}({args.disk_chunks}) -> "
        f"parent {args.algorithm}({args.disk_chunks * edges})"
    )
    print(format_table(rows, title=title))
    print(
        f"origin offload: {result.origin_offload:.4f} "
        f"({result.num_user_requests} user requests, "
        f"{result.origin_requests} ended at origin)"
    )
    if result.report is not None:
        print(result.report.describe())
        for stage in result.report.stages:
            rate = f", {stage.rate:,.0f} items/s" if stage.rate else ""
            print(f"  {stage.name}: {stage.seconds:.3f}s{rate}")
    return 0


def main_sim(argv: Optional[Sequence[str]] = None) -> int:
    """Replay a trace file through one caching algorithm."""
    parser = argparse.ArgumentParser(prog="repro-sim", description=main_sim.__doc__)
    parser.add_argument("trace", help="trace file from repro-gen")
    parser.add_argument(
        "--algorithm",
        choices=sorted(CACHE_FACTORIES),
        default="Cafe",
    )
    parser.add_argument(
        "--disk-chunks", type=int, required=True, help="disk size in chunks"
    )
    parser.add_argument("--alpha", type=float, default=1.0, help="alpha_F2R")
    parser.add_argument(
        "--interval", type=float, default=3600.0, help="metrics bucket seconds"
    )
    parser.add_argument(
        "--series", action="store_true", help="also print the hourly time series"
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print replay progress to stderr while running",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help=(
            "wrap the cache in an invariant-auditing proxy "
            "(capacity, fill/eviction accounting, redirect purity); "
            "exits non-zero on any violation"
        ),
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const=25,
        default=None,
        type=int,
        metavar="N",
        help=(
            "run the replay under cProfile and print the top-N functions "
            "by cumulative time (default N=25)"
        ),
    )
    parser.add_argument(
        "--fleet-edges",
        type=int,
        default=None,
        metavar="N",
        help=(
            "replay through the packed-batched fleet lane instead of "
            "the single-cache engine: the trace is sharded round-robin "
            "across N edge caches (each --disk-chunks large) behind a "
            "parent of the same algorithm sized N*--disk-chunks; "
            "combine with --profile to attribute time inside the "
            "batched fleet replay"
        ),
    )
    parser.add_argument(
        "--telemetry",
        metavar="OUT",
        default=None,
        help=(
            "export structured run telemetry (cache probes, periodic "
            "snapshots, events) as JSONL to OUT (.gz ok); read it back "
            "with repro-report"
        ),
    )
    parser.add_argument(
        "--no-probes",
        action="store_true",
        help="with --telemetry: skip cache-internals probes "
        "(snapshots and traffic summaries only)",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        metavar="N",
        help="with --telemetry: requests between lane snapshots "
        "(0 disables sampling)",
    )
    args = parser.parse_args(argv)

    telemetry = None
    if args.telemetry is not None:
        from repro.obs import Telemetry, TelemetryOptions
        from repro.obs.telemetry import DEFAULT_SNAPSHOT_EVERY

        options = TelemetryOptions(
            probes=not args.no_probes,
            snapshot_every=(
                args.snapshot_every
                if args.snapshot_every is not None
                else DEFAULT_SNAPSHOT_EVERY
            ),
        )
        telemetry = Telemetry(options)
    elif args.no_probes or args.snapshot_every is not None:
        parser.error("--no-probes/--snapshot-every require --telemetry")

    if args.fleet_edges is not None:
        if args.fleet_edges < 1:
            parser.error("--fleet-edges must be >= 1")
        if args.telemetry or args.audit or args.series:
            parser.error(
                "--fleet-edges replays the multi-server lane and does "
                "not combine with --telemetry/--audit/--series"
            )

    requests = list(_read_trace(args.trace))

    progress = None
    if args.progress:

        def progress(done, total, elapsed):
            where = f"{done}/{total}" if total is not None else str(done)
            print(f"  replayed {where} requests in {elapsed:.1f}s", file=sys.stderr)

    if args.fleet_edges is not None:
        return _sim_fleet(args, requests, progress)

    cache = build_cache(args.algorithm, args.disk_chunks, alpha_f2r=args.alpha)
    audited = None
    if args.audit:
        from repro.verify.audit import AuditedCache

        audited = AuditedCache(cache, strict=False)
        cache = audited

    result = _profiled(args.profile, lambda: replay(
        cache, requests, interval=args.interval, progress=progress,
        telemetry=telemetry, label=args.algorithm,
    ))
    steady = result.steady
    totals = result.totals
    rows = [
        {"window": "steady (2nd half)", "efficiency": steady.efficiency,
         "redirect_ratio": steady.redirect_ratio,
         "ingress_fraction": steady.ingress_fraction,
         "requests": steady.num_requests},
        {"window": "whole trace", "efficiency": totals.efficiency,
         "redirect_ratio": totals.redirect_ratio,
         "ingress_fraction": totals.ingress_fraction,
         "requests": totals.num_requests},
    ]
    print(format_table(rows, title=cache.describe()))
    if result.report is not None:
        print(result.report.describe())
        for stage in result.report.stages:
            rate = f", {stage.rate:,.0f} items/s" if stage.rate else ""
            print(f"  {stage.name}: {stage.seconds:.3f}s{rate}")
    if args.series:
        srows = [
            {
                "t_hours": s.t_start / 3600.0,
                "efficiency": s.summary.efficiency,
                "redirect_ratio": s.summary.redirect_ratio,
                "ingress_fraction": s.summary.ingress_fraction,
            }
            for s in result.metrics.series()
        ]
        print(format_table(srows, title="time series"))
    if telemetry is not None:
        from repro.obs import write_telemetry

        telemetry.meta.update(
            {
                "trace": args.trace,
                "algorithm": args.algorithm,
                "disk_chunks": args.disk_chunks,
                "alpha_f2r": args.alpha,
                "label": f"{args.algorithm} ({args.trace})",
            }
        )
        reports = [result.report] if result.report is not None else None
        count = write_telemetry(args.telemetry, telemetry, reports=reports)
        print(f"wrote {count} telemetry records to {args.telemetry}")
        print(telemetry.describe())
    if audited is not None:
        print(audited.summary())
        for violation in audited.violations[:20]:
            print(f"  {violation}")
        if len(audited.violations) > 20:
            print(f"  ... and {len(audited.violations) - 20} more")
        if not audited.ok:
            return 1
    return 0


def main_experiment(argv: Optional[Sequence[str]] = None) -> int:
    """Run the reproduction experiments (Figures 2-7 + extensions)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment", description=main_experiment.__doc__
    )
    parser.add_argument(
        "figures",
        nargs="*",
        default=["all"],
        help=(
            "experiment names (fig2..fig7, cdnwide, proactive, "
            "robustness, lp_tightness, availability) or 'all'"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "full", "paper"],
        default=None,
        help="experiment scale (default: REPRO_SCALE env or 'full')",
    )
    parser.add_argument(
        "--markdown",
        metavar="FILE",
        default=None,
        help="additionally write the results as a Markdown report",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for sweep execution (sets REPRO_WORKERS; "
            "default 1 = in-process)"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help=(
            "persist each completed sweep group to PATH (sets "
            "REPRO_CHECKPOINT) so a killed run resumes where it stopped; "
            "delete the file to force a fresh run"
        ),
    )
    args = parser.parse_args(argv)

    import os

    if args.scale is not None:
        os.environ["REPRO_SCALE"] = args.scale
    if args.workers is not None:
        if args.workers < 1:
            parser.error("--workers must be >= 1")
        os.environ["REPRO_WORKERS"] = str(args.workers)
    if args.checkpoint is not None:
        os.environ["REPRO_CHECKPOINT"] = args.checkpoint
    scale = scale_from_env()

    names = list(ALL_FIGURES) if args.figures == ["all"] else args.figures
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        parser.error(f"unknown figures: {unknown}; choose from {sorted(ALL_FIGURES)}")

    print(f"scale: {scale.name} ({scale.days:g} days, x{scale.profile_scale:g} volume)")
    results = []
    for name in names:
        module = ALL_FIGURES[name]
        result = module.run(scale)
        results.append(result)
        print()
        print(result.to_text())

    if args.markdown:
        from repro.analysis.report import render_report

        preamble = (
            f"Scale: **{scale.name}** ({scale.days:g} days, "
            f"x{scale.profile_scale:g} volume). See EXPERIMENTS.md for the "
            f"paper-vs-measured interpretation of each figure."
        )
        with open(args.markdown, "w") as fh:
            fh.write(render_report(results, preamble=preamble))
        print(f"\nwrote Markdown report to {args.markdown}")
    return 0


def main_validate(argv: Optional[Sequence[str]] = None) -> int:
    """Validate a trace file; optionally write a repaired copy."""
    parser = argparse.ArgumentParser(
        prog="repro-validate", description=main_validate.__doc__
    )
    parser.add_argument("trace", help="trace file (.csv/.jsonl, .gz ok)")
    parser.add_argument(
        "--repair",
        metavar="OUT",
        default=None,
        help="write a repaired (sorted, sanitized) copy to OUT",
    )
    parser.add_argument(
        "--max-issues", type=int, default=20, help="issues to print in detail"
    )
    args = parser.parse_args(argv)

    from repro.trace.validate import repair_trace, validate_trace

    requests = list(_read_trace(args.trace))
    report = validate_trace(requests)
    print(report.summary())
    for issue in report.issues[: args.max_issues]:
        print(f"  [{issue.index}] {issue.kind}: {issue.detail}")
    if len(report.issues) > args.max_issues:
        print(f"  ... and {len(report.issues) - args.max_issues} more")

    if args.repair:
        repaired = repair_trace(requests)
        if ".jsonl" in args.repair:
            count = write_trace_jsonl(args.repair, repaired)
        else:
            count = write_trace_csv(args.repair, repaired)
        print(f"wrote {count} repaired requests to {args.repair}")
        return 0
    return 0 if report.ok else 1


def main_verify(argv: Optional[Sequence[str]] = None) -> int:
    """Differentially verify fast caches against their oracles."""
    parser = argparse.ArgumentParser(
        prog="repro-verify", description=main_verify.__doc__
    )
    parser.add_argument(
        "--seeds", type=int, default=20, help="fuzz scenarios per algorithm"
    )
    parser.add_argument(
        "--requests", type=int, default=600, help="requests per fuzz trace"
    )
    parser.add_argument(
        "--algorithms",
        nargs="*",
        default=None,
        metavar="NAME",
        help="subset of online algorithms to verify (default: all with oracles)",
    )
    parser.add_argument(
        "--policies",
        action="store_true",
        help=(
            "verify every registered policy kernel (the policy registry "
            "drives the list, so new plugins are covered automatically); "
            "mutually exclusive with --algorithms"
        ),
    )
    parser.add_argument(
        "--dump-dir",
        default="verify-failures",
        help="directory for minimized counterexample artifacts",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip delta-debugging of failing traces (faster triage)",
    )
    parser.add_argument(
        "--replay",
        metavar="DIR",
        default=None,
        help="re-run one dumped counterexample directory and exit",
    )
    parser.add_argument(
        "--fault-seeds",
        type=int,
        default=10,
        metavar="N",
        help=(
            "fault-fuzz scenarios per algorithm: random outage/restart/"
            "degrade/brownout schedules replayed over 1-3 server "
            "topologies with audited caches (0 disables)"
        ),
    )
    args = parser.parse_args(argv)

    from repro.verify.differential import (
        KERNEL_ALGORITHMS,
        dump_counterexample,
        replay_counterexample,
        verify_algorithm,
        verify_kernel_lane,
    )
    from repro.verify.fuzz import scenario_matrix
    from repro.verify.oracles import ORACLE_FACTORIES

    if args.replay:
        result = replay_counterexample(args.replay)
        if result.ok:
            print(f"counterexample no longer reproduces: {args.replay}")
            return 0
        if result.divergence is not None:
            print(result.divergence)
        for violation in result.violations:
            print(violation)
        return 1

    if args.policies and args.algorithms:
        parser.error("--policies and --algorithms are mutually exclusive")
    if args.policies:
        from repro.core.policy import POLICY_REGISTRY

        algorithms = sorted(POLICY_REGISTRY)
    else:
        algorithms = args.algorithms or sorted(ORACLE_FACTORIES)
    unknown = [a for a in algorithms if a not in ORACLE_FACTORIES]
    if unknown:
        parser.error(
            f"no oracle for: {unknown}; choose from {sorted(ORACLE_FACTORIES)}"
        )

    scenarios = list(scenario_matrix(seeds=args.seeds, num_requests=args.requests))
    failures = 0
    rows = []
    for algorithm in algorithms:
        diverged = 0
        violated = 0
        for scenario in scenarios:
            result, minimal = verify_algorithm(
                algorithm, scenario, shrink=not args.no_shrink
            )
            if result.ok:
                continue
            failures += 1
            if result.divergence is not None:
                diverged += 1
            if result.violations:
                violated += 1
            trace = minimal if minimal is not None else scenario.trace()
            path = dump_counterexample(
                args.dump_dir, algorithm, scenario, result, trace
            )
            print(f"FAIL {algorithm} on {scenario.label}:")
            if result.divergence is not None:
                print(f"  {result.divergence}")
            for violation in result.violations[:5]:
                print(f"  {violation}")
            print(f"  minimized to {len(trace)} requests -> {path}")
        rows.append(
            {
                "algorithm": algorithm,
                "scenarios": len(scenarios),
                "divergences": diverged,
                "violations": violated,
                "status": "ok" if diverged == 0 and violated == 0 else "FAIL",
            }
        )
    print(format_table(rows, title=f"differential verification ({args.requests} req/trace)"))

    # Kernel-lane equivalence: replay the same adversarial scenarios
    # through the vectorized block kernels against the scalar block
    # walk (responses, miss lists, occupancy, metric totals).
    kernel_failures = 0
    kernel_algorithms = [a for a in algorithms if a in KERNEL_ALGORITHMS]
    if kernel_algorithms:
        kernel_rows = []
        for algorithm in kernel_algorithms:
            bad = 0
            for scenario in scenarios:
                result = verify_kernel_lane(algorithm, scenario)
                if not result.ok:
                    kernel_failures += 1
                    bad += 1
                    print(f"KERNEL-FAIL {algorithm} on {scenario.label}:")
                    print(f"  {result.divergence}")
            kernel_rows.append(
                {
                    "algorithm": algorithm,
                    "scenarios": len(scenarios),
                    "divergences": bad,
                    "status": "ok" if bad == 0 else "FAIL",
                }
            )
        print(
            format_table(
                kernel_rows,
                title="kernel-lane equivalence (vectorized vs scalar)",
            )
        )

    fault_failures = 0
    if args.fault_seeds > 0:
        from repro.verify.faultcheck import DEFAULT_ALGORITHMS, run_fault_fuzz

        fault_algorithms = tuple(
            a for a in algorithms if a in DEFAULT_ALGORITHMS
        ) or DEFAULT_ALGORITHMS
        outcomes = run_fault_fuzz(
            seeds=args.fault_seeds,
            algorithms=fault_algorithms,
            num_requests=args.requests,
        )
        fault_rows = []
        for algorithm in fault_algorithms:
            mine = [o for o in outcomes if o.scenario.algorithm == algorithm]
            bad = [o for o in mine if not o.ok]
            fault_failures += len(bad)
            for outcome in bad:
                print(f"FAULT-FAIL {outcome.scenario.label}:")
                for issue in outcome.issues[:5]:
                    print(f"  {issue}")
                for violation in outcome.violations[:5]:
                    print(f"  {violation}")
            fault_rows.append(
                {
                    "algorithm": algorithm,
                    "scenarios": len(mine),
                    "lost_requests": sum(o.requests_lost for o in mine),
                    "restarts": sum(o.restarts for o in mine),
                    "status": "ok" if not bad else "FAIL",
                }
            )
        print(
            format_table(
                fault_rows,
                title=f"fault fuzzing ({args.fault_seeds} schedules/algorithm)",
            )
        )

    if failures or fault_failures or kernel_failures:
        if failures:
            print(f"{failures} failing case(s); artifacts under {args.dump_dir}/")
        if kernel_failures:
            print(f"{kernel_failures} failing kernel-lane case(s)")
        if fault_failures:
            print(f"{fault_failures} failing fault scenario(s)")
        return 1
    print("all algorithms match their oracles")
    return 0


def main_report(argv: Optional[Sequence[str]] = None) -> int:
    """Render and compare telemetry JSONL exports (repro-report)."""
    from repro.obs.report import main

    return main(argv)


def main_serve(argv: Optional[Sequence[str]] = None) -> int:
    """Run the live decision daemon (repro-serve)."""
    from repro.serve.cli import main

    return main(argv)


def _dispatch() -> int:  # pragma: no cover - convenience for python -m
    prog = sys.argv[1] if len(sys.argv) > 1 else ""
    mains = {
        "gen": main_gen,
        "sim": main_sim,
        "experiment": main_experiment,
        "validate": main_validate,
        "verify": main_verify,
        "report": main_report,
        "serve": main_serve,
    }
    if prog not in mains:
        print(
            "usage: python -m repro.cli "
            "{gen|sim|experiment|validate|verify|report|serve} ...",
            file=sys.stderr,
        )
        return 2
    return mains[prog](sys.argv[2:])


if __name__ == "__main__":  # pragma: no cover
    sys.exit(_dispatch())
