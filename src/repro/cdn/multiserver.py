"""Hierarchical multi-server replay (the Section 10 CDN-wide setting).

Each edge server receives its own user trace.  Per request:

* the edge's cache decides serve-or-redirect exactly as in the
  single-server model;
* a **redirect** forwards the original request along ``redirect_to``
  (the secondary map); after ``max_redirects`` hops, or when no target
  remains, the origin serves it;
* a **serve with cache-fill** generates *fill requests* to the server's
  ``fill_from`` target — one per contiguous chunk run, chunk-aligned —
  which that server handles like any other request ("a request ... may
  be received from a user or from another (downstream) server for a
  cache fill").  Fills recurse up to the origin.

Traces from multiple edges are merged in timestamp order so every cache
sees non-decreasing time.  The result carries per-server metrics plus
CDN-wide aggregates: origin egress (the traffic the CDN failed to
absorb at its "lines of defense") and redirect-hop counts.

Two replay lanes produce byte-identical results:

* the **object lane** walks ``heapq``-merged ``Request`` streams one
  step at a time (any mapping of request iterables, validated on the
  fly during the merge walk);
* the **packed lane** (a :class:`~repro.trace.fleet.FleetTrace`, or a
  mapping of :class:`~repro.trace.columnar.PackedTrace` shards) replays
  the precomputed merge plan run by run, batching each same-edge run
  through the cache's ``handle_span`` hot path.  When no faults are
  scheduled and no redirect/fill chain can revisit a server (any
  hierarchy qualifies; peered rings do not), whole runs are dispatched
  at C speed; otherwise the packed columns are walked per request,
  preserving fault semantics exactly.

A :class:`~repro.cdn.faults.FaultSchedule` can be injected to model
server outages, cold restarts (cache wipes), degraded ingress links
and origin brownouts; see :mod:`repro.cdn.faults` for the routing and
accounting semantics.  Without a schedule the fault machinery costs a
single ``is None`` check per hop and the replay is byte-identical to a
fault-unaware one.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.base import SERVE_HIT, Decision
from repro.sim.instrumentation import (
    EngineEvent,
    ProgressCallback,
    ProgressTicker,
    RunReport,
    StageTimer,
)
from repro.sim.metrics import MetricsCollector, TrafficSummary
from repro.trace.columnar import PackedTrace, _np
from repro.trace.fleet import FleetTrace
from repro.trace.requests import Request
from repro.cdn.faults import FaultRuntime, FaultSchedule, ServerAvailability
from repro.cdn.topology import CdnTopology

__all__ = ["CdnSimulator", "CdnSimulationResult"]


@dataclass
class CdnSimulationResult:
    """Per-server and CDN-wide outcomes of one multi-server replay."""

    topology: CdnTopology
    per_server: Dict[str, MetricsCollector]
    #: bytes served by the origin (requests the CDN could not absorb)
    origin_bytes: int = 0
    #: user requests that ended at the origin via redirects
    origin_requests: int = 0
    #: cache-fill requests that reached the origin (directly or after
    #: redirects at intermediate servers)
    origin_fill_requests: int = 0
    #: bytes of ``origin_bytes`` attributable to cache fills
    origin_fill_bytes: int = 0
    #: distribution of redirect chain lengths: hops -> request count
    redirect_hops: Dict[int, int] = field(default_factory=dict)
    num_user_requests: int = 0
    user_requested_bytes: int = 0
    #: user-requested bytes that ended up served by the origin
    origin_redirect_bytes: int = 0
    #: user requests dropped by an origin brownout (served by no one)
    requests_lost: int = 0
    lost_bytes: int = 0
    #: cache-fill requests dropped by an origin brownout (the transfer
    #: is assumed to succeed on transport-level retry, so cache state
    #: stays consistent; the degraded service is what is counted)
    fill_requests_lost: int = 0
    fill_bytes_lost: int = 0
    #: per-server availability accounting; empty when no faults ran
    availability: Dict[str, ServerAvailability] = field(default_factory=dict)
    #: the fault schedule this replay ran under (None = fault-free)
    faults: Optional[FaultSchedule] = None
    #: engine observability: wall time, request rate, stage breakdown
    report: Optional[RunReport] = None

    def summary(self, server: str) -> TrafficSummary:
        """Whole-run traffic totals of one named server."""
        return self.per_server[server].totals()

    @property
    def origin_offload(self) -> float:
        """Fraction of user-requested bytes the cache tier absorbed.

        This counts only redirected-to-origin traffic against the CDN;
        fills that transited the origin are visible in ``origin_bytes``.
        """
        if self.user_requested_bytes == 0:
            return float("nan")
        return 1.0 - self.origin_redirect_bytes / self.user_requested_bytes

    @property
    def availability_ratio(self) -> float:
        """Fraction of user requests that were served by *someone*.

        1.0 in a fault-free replay; below 1.0 only when origin
        brownouts dropped requests end to end.
        """
        if self.num_user_requests == 0:
            return float("nan")
        return 1.0 - self.requests_lost / self.num_user_requests

    def describe(self) -> str:
        """Multi-line human-readable report of the replay."""
        lines = [
            f"CDN replay: {self.num_user_requests} user requests, "
            f"origin served {self.origin_bytes / 1e9:.2f} GB "
            f"({self.origin_requests} redirected-to-origin requests)"
        ]
        if self.faults is not None:
            lines.append(
                f"  faults: {self.faults.describe()} -> "
                f"{self.requests_lost} lost requests "
                f"(availability {self.availability_ratio:.4f})"
            )
        for name, collector in sorted(self.per_server.items()):
            s = collector.totals()
            if s.num_requests == 0:
                continue
            lines.append(
                f"  {name}: eff={s.efficiency:.3f} "
                f"redirect={s.redirect_ratio:.3f} ingress={s.ingress_fraction:.3f} "
                f"({s.num_requests} requests)"
            )
        return "\n".join(lines)


class CdnSimulator:
    """Replays per-edge user traces through a :class:`CdnTopology`.

    ``faults`` (optional) injects the :mod:`repro.cdn.faults` event
    schedule: down servers are skipped via failover routing, cold
    restarts wipe cache state at recovery, degraded links and origin
    brownouts are accounted.  ``faults=None`` and an empty schedule are
    equivalent — and exactly free.
    """

    def __init__(
        self,
        topology: CdnTopology,
        max_redirects: int = 4,
        faults: Optional[FaultSchedule] = None,
    ) -> None:
        if max_redirects < 1:
            raise ValueError("max_redirects must be >= 1")
        self.topology = topology
        self.max_redirects = max_redirects
        self.faults = faults
        #: the live FaultRuntime while :meth:`run` executes (None
        #: otherwise, and None throughout for empty/absent schedules)
        self._rt: Optional[FaultRuntime] = None

    def run(
        self,
        edge_traces: "Mapping[str, Iterable[Request]] | FleetTrace",
        interval: float = 3600.0,
        progress: Optional[ProgressCallback] = None,
        progress_every: int = 8192,
    ) -> CdnSimulationResult:
        """Replay ``edge_traces`` (server name -> its user trace).

        Accepts a :class:`~repro.trace.fleet.FleetTrace`, a mapping of
        :class:`~repro.trace.columnar.PackedTrace` shards (wrapped into
        a fleet automatically), or a mapping of plain request iterables
        — including one-shot generators, whose lengths are unknown
        (progress callbacks then receive ``total=None``).  All forms
        produce byte-identical results; the packed forms replay through
        the batched ``handle_span`` lane.  Unsorted traces fail fast
        during the merge walk with the offending edge and index.
        """
        fleet: Optional[FleetTrace] = None
        if isinstance(edge_traces, FleetTrace):
            fleet = edge_traces
        elif edge_traces and all(
            isinstance(trace, PackedTrace) for trace in edge_traces.values()
        ):
            fleet = FleetTrace(edge_traces)
        names = fleet.names if fleet is not None else edge_traces.keys()
        for name in names:
            if name not in self.topology:
                raise KeyError(f"trace for unknown server {name!r}")
            if self.topology[name].is_origin:
                raise ValueError("user traces cannot target the origin directly")

        collectors: Dict[str, MetricsCollector] = {}
        for name, server in self.topology.servers.items():
            if server.cache is not None:
                collectors[name] = MetricsCollector(
                    server.cache.cost_model,
                    chunk_bytes=server.cache.chunk_bytes,
                    interval=interval,
                )

        result = CdnSimulationResult(
            topology=self.topology, per_server=collectors
        )

        rt = self.faults.runtime(self.topology) if self.faults is not None else None
        self._rt = rt
        events: List[EngineEvent] = []

        timer = StageTimer()
        if fleet is not None:
            total: Optional[int] = len(fleet)
        else:
            try:
                total = sum(len(trace) for trace in edge_traces.values())
            except TypeError:  # generator/streaming traces have no len()
                total = None
        ticker = ProgressTicker(progress, every=progress_every, total=total)
        mode = "object"
        t0 = time.perf_counter()
        try:
            if fleet is not None:
                mode = self._replay_fleet(fleet, result, rt, events, ticker)
            elif rt is None:
                handle = self._handle_span
                hops_map = result.redirect_hops
                for name, request in _merge_by_time(edge_traces):
                    result.num_user_requests += 1
                    nbytes = request.b1 - request.b0 + 1
                    result.user_requested_bytes += nbytes
                    hops = handle(
                        name, request.t, request.video,
                        request.b0, request.b1, nbytes, result, 0,
                    )
                    hops_map[hops] = hops_map.get(hops, 0) + 1
                    ticker.tick(result.num_user_requests)
            else:
                handle = self._handle_span
                hops_map = result.redirect_hops
                for name, request in _merge_by_time(edge_traces):
                    t = request.t
                    for wiped in rt.advance_to(t):
                        events.append(EngineEvent(t, "cache-wipe", wiped))
                    result.num_user_requests += 1
                    nbytes = request.b1 - request.b0 + 1
                    result.user_requested_bytes += nbytes
                    hops = handle(
                        name, t, request.video,
                        request.b0, request.b1, nbytes, result, 0, edge=name,
                    )
                    hops_map[hops] = hops_map.get(hops, 0) + 1
                    ticker.tick(result.num_user_requests)
        finally:
            self._rt = None
        wall = time.perf_counter() - t0
        timer.add("replay", wall, result.num_user_requests)
        ticker.finish(result.num_user_requests)

        extra: Dict[str, object] = {
            "edges": len(names),
            "servers": len(self.topology.servers),
            "trace_format": mode,
        }
        if rt is not None:
            result.availability = rt.availability
            result.faults = self.faults
            extra["fault_events"] = len(self.faults)
            extra["requests_lost"] = result.requests_lost
        result.report = RunReport(
            engine="cdn",
            mode="serial",
            wall_seconds=wall,
            num_requests=result.num_user_requests,
            num_caches=len(collectors),
            stages=timer.timings(),
            extra=extra,
            events=events,
        )
        return result

    # -- internals -----------------------------------------------------------

    def _replay_fleet(
        self,
        fleet: FleetTrace,
        result: CdnSimulationResult,
        rt: Optional[FaultRuntime],
        events: List[EngineEvent],
        ticker: ProgressTicker,
    ) -> str:
        """Replay a packed fleet; returns the lane name for the report.

        Per edge, the shard's hot columns are adapted once to the edge
        cache's chunk size; the precomputed merge plan then drives
        either the run-batched lane (fault-free and no redirect/fill
        cycle — whole same-edge runs through ``handle_span`` +
        ``record_packed``) or the per-request lane (faults or cyclic
        wiring — scalar ``_handle_span`` walk in exact merged order).
        """
        lanes = []
        for name in fleet.names:
            shard = fleet.shards[name]
            server = self.topology[name]
            cache = server.cache
            ts, videos, b0s, b1s, c0s, c1s, num_bytes, num_chunks = (
                shard.hot_columns()
            )
            k = cache.chunk_bytes
            columnar = _np is not None and isinstance(
                shard.column("t"), _np.ndarray
            )
            if k != shard.chunk_bytes:
                # Re-derive the chunk columns under the cache's chunking.
                if columnar:
                    c0_arr = shard.column("b0") // k
                    c1_arr = shard.column("b1") // k
                    nc_arr = c1_arr - c0_arr + 1
                    c0s = c0_arr.tolist()
                    c1s = c1_arr.tolist()
                    num_chunks = nc_arr.tolist()
                else:
                    c0s = [b // k for b in b0s]
                    c1s = [b // k for b in b1s]
                    num_chunks = [hi - lo + 1 for lo, hi in zip(c0s, c1s)]
            elif columnar:
                nc_arr = shard.column("num_chunks")
            # (t, num_bytes, num_chunks) as numpy columns for the
            # vectorized block recorder; None on the fallback backing.
            block_cols = (
                (shard.column("t"), shard.column("num_bytes"), nc_arr)
                if columnar
                else None
            )
            lanes.append(
                (
                    name,
                    server,
                    cache.handle_span_block,
                    result.per_server[name],
                    ts, videos, b0s, b1s, c0s, c1s, num_bytes, num_chunks,
                    block_cols,
                )
            )
        if rt is None and self._hops_avoid_traced_edges(fleet.names):
            self._replay_fleet_batched(lanes, fleet.names, result, ticker)
            return "packed-batched"
        self._replay_fleet_stepwise(
            lanes, fleet.merge_runs(), result, rt, events, ticker
        )
        return "packed"

    def _replay_fleet_batched(self, lanes, names, result, ticker) -> None:
        """Shard-batched packed replay (fault-free; hops avoid edges).

        Each edge cache sees exactly its own shard (the guard proved no
        hop chain can deliver extra traffic to a traced edge), so whole
        shards are dispatched through ``handle_span``/``record_packed``
        at C speed regardless of how finely the fleet's arrivals
        interleave.  Only the hop-generating responses — fills and
        redirects, typically a small minority — are then walked in
        global merged time order, which is what the shared upstream
        caches observe; restricting the merged order to hop-generating
        requests preserves their relative order, so results are
        byte-identical to the object walk.
        """
        hops_map = result.redirect_hops
        name_rank = {name: r for r, name in enumerate(sorted(names))}
        count = 0
        pending = []
        edge_responses = []
        for e, lane in enumerate(lanes):
            (
                name, _server, handle_block, collector,
                ts, videos, b0s, b1s, c0s, c1s, num_bytes, num_chunks,
                block_cols,
            ) = lane
            responses = handle_block(ts, videos, b0s, b1s, c0s, c1s)
            n_edge = len(ts)
            count += n_edge
            result.num_user_requests += n_edge
            rank = name_rank[name]
            # (t, position, name-rank) replicates heapq.merge's tie order
            pend = [
                (ts[j], j, rank, e)
                for j, response in enumerate(responses)
                if response is not SERVE_HIT
            ]
            if block_cols is not None:
                ts_col, nb_col, nc_col = block_cols
                collector.record_packed_block(
                    ts_col, nb_col, nc_col, responses,
                    [item[1] for item in pend],
                )
                result.user_requested_bytes += int(nb_col.sum())
            else:
                collector.record_packed(ts, num_bytes, num_chunks, responses)
                result.user_requested_bytes += sum(num_bytes)
            hits = n_edge - len(pend)
            if hits:
                hops_map[0] = hops_map.get(0, 0) + hits
            pending.extend(pend)
            edge_responses.append(responses)
            ticker.tick_batch(count)
        pending.sort()
        order = self._hop_topo_order(names)
        if order is not None:
            self._walk_hops_leveled(
                lanes, pending, edge_responses, order, result
            )
        else:
            self._walk_hops_scalar(lanes, pending, edge_responses, result)

    def _walk_hops_scalar(
        self, lanes, pending, edge_responses, result
    ) -> None:
        """Depth-first hop walk: each chain runs to completion in turn.

        The fully general fallback (redirect rings among untraced
        servers make level batching impossible): every hop-generating
        edge response recurses through :meth:`_handle_span` exactly as
        the object lane would, in global merged order.
        """
        hops_map = result.redirect_hops
        origin_name = self.topology.origin_name
        max_redirects = self.max_redirects
        handle = self._handle_span
        serve = Decision.SERVE
        for t, j, _rank, e in pending:
            (
                _name, server, _handle_block, _collector,
                _ts, videos, b0s, b1s, c0s, c1s, num_bytes, _num_chunks,
                _block_cols,
            ) = lanes[e]
            response = edge_responses[e][j]
            if response.decision is serve:
                filled = response.filled_chunks
                fill_from = server.fill_from
                if filled and fill_from is not None:
                    # Chunk-aligned upstream fill, clamped to the
                    # request's own chunk range (see _fill_requests).
                    k = server.cache.chunk_bytes
                    c0 = c0s[j]
                    last = min(c0 + filled, c1s[j] + 1)
                    fb1 = last * k - 1
                    fb0 = c0 * k
                    handle(
                        fill_from, t, videos[j], fb0, fb1,
                        fb1 - fb0 + 1, result, 0, user=False,
                    )
                hops_map[0] = hops_map.get(0, 0) + 1
            else:
                target = server.redirect_to
                if target is None or 1 >= max_redirects:
                    target = origin_name
                hops = handle(
                    target, t, videos[j], b0s[j], b1s[j],
                    num_bytes[j], result, 1,
                )
                hops_map[hops] = hops_map.get(hops, 0) + 1

    def _walk_hops_leveled(
        self, lanes, pending, edge_responses, order, result
    ) -> None:
        """Level-batched hop walk over an acyclic hop subgraph.

        Chains carry the global merged position (``seq``) of their
        originating request.  Processing servers in topological order
        guarantees every chain reaching a server is buffered before
        that server runs, and replaying each buffer in ``seq`` order
        reproduces the object lane's depth-first arrival order exactly
        (chains are independent, each visits a server at most once).
        Whole buffers then go through ``handle_span_block`` and one
        ``record_packed`` call per server, instead of one recursive
        ``_handle_span`` per hop.
        """
        topology = self.topology
        hops_map = result.redirect_hops
        origin_name = topology.origin_name
        max_redirects = self.max_redirects
        serve = Decision.SERVE
        buffers: Dict[str, list] = {}
        pend_to = buffers.setdefault
        # Seed per edge (lane fields hoisted out of the per-entry path);
        # append order within a buffer is irrelevant because each buffer
        # is sorted by seq before its server runs.
        by_edge: List[list] = [[] for _ in lanes]
        for seq, item in enumerate(pending):
            by_edge[item[3]].append((seq, item[1]))
        for e, picks in enumerate(by_edge):
            if not picks:
                continue
            (
                _name, server, _handle_block, _collector,
                ts_col, videos, b0s, b1s, c0s, c1s, num_bytes, _num_chunks,
                _block_cols,
            ) = lanes[e]
            responses = edge_responses[e]
            fill_from = server.fill_from
            k = server.cache.chunk_bytes
            target = server.redirect_to
            if target is None or 1 >= max_redirects:
                target = origin_name
            serve_count = 0
            for seq, j in picks:
                response = responses[j]
                if response.decision is serve:
                    serve_count += 1
                    filled = response.filled_chunks
                    if filled and fill_from is not None:
                        c0 = c0s[j]
                        last = min(c0 + filled, c1s[j] + 1)
                        fb1 = last * k - 1
                        fb0 = c0 * k
                        pend_to(fill_from, []).append(
                            (seq, ts_col[j], videos[j], fb0, fb1,
                             fb1 - fb0 + 1, 0, False)
                        )
                else:
                    pend_to(target, []).append(
                        (seq, ts_col[j], videos[j], b0s[j], b1s[j],
                         num_bytes[j], 1, True)
                    )
            if serve_count:
                hops_map[0] = hops_map.get(0, 0) + serve_count
        for name in order:
            entries = buffers.pop(name, None)
            if not entries:
                continue
            entries.sort()
            server = topology[name]
            if server.is_origin:
                user_count = user_bytes = fill_count = fill_bytes = 0
                for _seq, _t, _video, _b0, _b1, nbytes, hop, user in entries:
                    if user:
                        user_count += 1
                        user_bytes += nbytes
                        hops_map[hop] = hops_map.get(hop, 0) + 1
                    else:
                        fill_count += 1
                        fill_bytes += nbytes
                result.origin_bytes += user_bytes + fill_bytes
                result.origin_requests += user_count
                result.origin_redirect_bytes += user_bytes
                result.origin_fill_requests += fill_count
                result.origin_fill_bytes += fill_bytes
                continue
            cache = server.cache
            k = cache.chunk_bytes
            n = len(entries)
            seqs, ts, videos, b0s, b1s, nbs, hops, users = (
                list(col) for col in zip(*entries)
            )
            if _np is not None:
                b0_arr = _np.fromiter(b0s, _np.int64, n)
                b1_arr = _np.fromiter(b1s, _np.int64, n)
                c0_arr = b0_arr // k
                c1_arr = b1_arr // k
                c0s = c0_arr.tolist()
                c1s = c1_arr.tolist()
            else:
                c0s = [b0 // k for b0 in b0s]
                c1s = [b1 // k for b1 in b1s]
            responses = cache.handle_span_block(ts, videos, b0s, b1s, c0s, c1s)
            misses = [
                i for i, response in enumerate(responses)
                if response is not SERVE_HIT
            ]
            collector = result.per_server[name]
            if _np is not None:
                collector.record_packed_block(
                    _np.fromiter(ts, _np.float64, n),
                    _np.fromiter(nbs, _np.int64, n),
                    c1_arr - c0_arr + 1,
                    responses,
                    misses,
                )
            else:
                ncs = [c1s[i] - c0s[i] + 1 for i in range(n)]
                collector.record_packed(ts, nbs, ncs, responses)
            if any(users):
                # User chains that pure-hit here end with their current
                # hop count; non-hit serves are accounted below.
                for i, user in enumerate(users):
                    if user and responses[i] is SERVE_HIT:
                        hop = hops[i]
                        hops_map[hop] = hops_map.get(hop, 0) + 1
            fill_from = server.fill_from
            redirect_to = server.redirect_to
            for i in misses:
                response = responses[i]
                if response.decision is serve:
                    if users[i]:
                        hop = hops[i]
                        hops_map[hop] = hops_map.get(hop, 0) + 1
                    filled = response.filled_chunks
                    if filled and fill_from is not None:
                        c0 = c0s[i]
                        last = min(c0 + filled, c1s[i] + 1)
                        fb1 = last * k - 1
                        fb0 = c0 * k
                        pend_to(fill_from, []).append(
                            (seqs[i], ts[i], videos[i], fb0, fb1,
                             fb1 - fb0 + 1, 0, False)
                        )
                else:
                    hop = hops[i] + 1
                    target = redirect_to
                    if target is None or hop >= max_redirects:
                        target = origin_name
                    pend_to(target, []).append(
                        (seqs[i], ts[i], videos[i], b0s[i], b1s[i],
                         nbs[i], hop, users[i])
                    )
        if buffers:
            leftover = sorted(buffers)
            raise RuntimeError(
                f"hop chains reached servers outside the topological "
                f"plan: {leftover}"
            )

    def _replay_fleet_stepwise(
        self, lanes, runs, result, rt, events, ticker
    ) -> None:
        """Per-request packed replay: exact merged order, full fault path."""
        handle = self._handle_span
        hops_map = result.redirect_hops
        faulted = rt is not None
        count = 0
        for e, start, stop in zip(*runs):
            (
                name, _server, _handle_span, _collector,
                ts, videos, b0s, b1s, _c0s, _c1s, num_bytes, _num_chunks,
                _block_cols,
            ) = lanes[e]
            edge = name if faulted else None
            for i in range(start, stop):
                t = ts[i]
                if faulted:
                    for wiped in rt.advance_to(t):
                        events.append(EngineEvent(t, "cache-wipe", wiped))
                count += 1
                result.num_user_requests += 1
                nbytes = num_bytes[i]
                result.user_requested_bytes += nbytes
                hops = handle(
                    name, t, videos[i], b0s[i], b1s[i], nbytes,
                    result, 0, edge=edge,
                )
                hops_map[hops] = hops_map.get(hops, 0) + 1
                ticker.tick(count)

    def _hops_avoid_traced_edges(self, names) -> bool:
        """True when no hop chain from a traced edge reaches a traced edge.

        The shard-batched packed lane replays each traced edge's shard as
        one block, which is only byte-identical if those caches never see
        traffic beyond their own shard — i.e. no redirect/fill chain
        (including the origin hop-limit backstop) can deliver a request
        to a traced edge.  Hierarchies qualify (hops only climb toward
        the origin); peered redirect rings do not and take the stepwise
        lane.  O(servers): each node has at most two outgoing hops.
        """
        topology = self.topology
        traced = set(names)
        stack: List[str] = []
        for name in traced:
            server = topology[name]
            if server.redirect_to is not None:
                stack.append(server.redirect_to)
            if server.fill_from is not None:
                stack.append(server.fill_from)
        seen: set = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node in traced:
                return False
            server = topology[node]
            if server.redirect_to is not None and server.redirect_to not in seen:
                stack.append(server.redirect_to)
            if server.fill_from is not None and server.fill_from not in seen:
                stack.append(server.fill_from)
        return True

    def _hop_topo_order(self, names) -> Optional[List[str]]:
        """Topological order of the hop subgraph reachable from ``names``.

        Iterative DFS over redirect/fill successors, postorder reversed,
        so every server appears before the targets its responses can
        propagate to — the schedule for the level-batched hop walk.  The
        origin is seeded explicitly because the hop-limit backstop can
        deliver a chain there even when no server links to it.  Returns
        None when the reachable subgraph has a cycle (untraced redirect
        rings), in which case chains must run depth-first instead.
        """
        topology = self.topology
        roots = {topology.origin_name}
        for name in names:
            server = topology[name]
            if server.redirect_to is not None:
                roots.add(server.redirect_to)
            if server.fill_from is not None:
                roots.add(server.fill_from)
        order: List[str] = []
        done: set = set()
        on_path: set = set()
        for root in sorted(roots):
            if root in done:
                continue
            # Each stack frame is (node, entered): the first visit marks
            # the node on the current DFS path, the second finalizes it.
            stack = [(root, False)]
            while stack:
                node, entered = stack.pop()
                if entered:
                    on_path.discard(node)
                    done.add(node)
                    order.append(node)
                    continue
                if node in done:
                    continue
                if node in on_path:
                    return None
                on_path.add(node)
                stack.append((node, True))
                server = topology[node]
                for succ in (server.redirect_to, server.fill_from):
                    if succ is None or succ in done:
                        continue
                    if succ in on_path:
                        return None
                    stack.append((succ, False))
        order.reverse()
        return order

    def _handle(
        self,
        server_name: str,
        request: Request,
        result: CdnSimulationResult,
        hop: int,
        user: bool = True,
        edge: Optional[str] = None,
        failover: bool = False,
    ) -> int:
        """Object-lane compatibility wrapper over :meth:`_handle_span`."""
        return self._handle_span(
            server_name,
            request.t,
            request.video,
            request.b0,
            request.b1,
            request.b1 - request.b0 + 1,
            result,
            hop,
            user=user,
            edge=edge,
            failover=failover,
        )

    def _handle_span(
        self,
        server_name: str,
        t: float,
        video: int,
        b0: int,
        b1: int,
        nbytes: int,
        result: CdnSimulationResult,
        hop: int,
        user: bool = True,
        edge: Optional[str] = None,
        failover: bool = False,
    ) -> int:
        """Process one request span at ``server_name``; returns hops.

        The scalar hot path shared by every lane — no ``Request``
        objects anywhere on the serve/redirect/fill recursion.

        ``user`` distinguishes the user path from the fill path: a
        cache-fill request that climbs to the origin (directly, or after
        being redirected by an intermediate server) is origin *load* but
        not a failure of the redirect tier, so it must not count toward
        ``origin_requests`` / ``origin_redirect_bytes`` — those feed
        ``origin_offload``, which is defined over user traffic only.

        ``edge`` (faulted replays only) is the server the user request
        originally landed on — losses are attributed there.
        ``failover`` marks a request that already skipped a down server;
        whoever serves it counts its bytes as backup traffic.
        """
        rt = self._rt
        server = self.topology[server_name]

        if rt is not None and not server.is_origin and rt.is_down(
            server_name, t
        ):
            # Failover: a down server is skipped along the secondary
            # map (user path) or the next fill hop (fill path), with
            # the origin as the final backstop.
            stats = rt.availability[server_name]
            stats.failover_hops += 1
            if user:
                stats.down_requests += 1
                target = server.redirect_to
                if target is None or hop + 1 >= self.max_redirects:
                    target = self.topology.origin_name
                return self._handle_span(
                    target, t, video, b0, b1, nbytes, result, hop + 1,
                    user=True, edge=edge, failover=True,
                )
            stats.down_fills += 1
            target = server.fill_from
            if target is None:
                target = self.topology.origin_name
            return self._handle_span(
                target, t, video, b0, b1, nbytes, result, hop,
                user=False, edge=edge, failover=True,
            )

        if server.is_origin:
            if rt is not None and rt.origin_drops(t):
                # Brownout shed: the request is served by no one.
                if user:
                    result.requests_lost += 1
                    result.lost_bytes += nbytes
                    if edge is not None:
                        stats = rt.availability[edge]
                        stats.lost_requests += 1
                        stats.lost_bytes += nbytes
                        collector = result.per_server.get(edge)
                        if collector is not None:
                            collector.record_lost(t, nbytes)
                else:
                    result.fill_requests_lost += 1
                    result.fill_bytes_lost += nbytes
                return hop
            result.origin_bytes += nbytes
            if user:
                result.origin_requests += 1
                result.origin_redirect_bytes += nbytes
            else:
                result.origin_fill_requests += 1
                result.origin_fill_bytes += nbytes
            return hop

        cache = server.cache
        k = cache.chunk_bytes
        c0 = b0 // k
        c1 = b1 // k
        response = cache.handle_span(t, video, b0, b1, c0, c1)
        result.per_server[server_name].record_raw(
            t, nbytes, c1 - c0 + 1, response
        )

        if rt is not None:
            if failover and response.decision is Decision.SERVE:
                stats = rt.availability[server_name]
                stats.backup_requests += 1
                stats.backup_bytes += nbytes
            if response.filled_chunks:
                rt.note_fill(
                    server_name, t, response.filled_chunks * k, len(cache)
                )

        if response.decision is Decision.SERVE:
            filled = response.filled_chunks
            if filled:
                target = server.fill_from
                if target is not None:
                    # Chunk-aligned upstream fill, clamped to the
                    # request's own chunk range (see _fill_requests).
                    last = min(c0 + filled, c1 + 1)
                    fb1 = last * k - 1
                    fb0 = c0 * k
                    self._handle_span(
                        target, t, video, fb0, fb1, fb1 - fb0 + 1,
                        result, 0, user=False, edge=edge,
                    )
            return hop

        # Redirect: follow the secondary map; origin backstops.
        target = server.redirect_to
        if target is None or hop + 1 >= self.max_redirects:
            target = self.topology.origin_name
        return self._handle_span(
            target, t, video, b0, b1, nbytes, result, hop + 1,
            user=user, edge=edge, failover=failover,
        )


def _fill_requests(request: Request, cache, filled_chunks: int) -> List[Request]:
    """Chunk-aligned upstream requests approximating this fill.

    The cache does not report *which* chunks it filled, only how many;
    the missing ones were, by construction, within the request's chunk
    range.  One aligned request covering ``filled_chunks`` chunks from
    the range start is the right volume and locality for upstream
    accounting (upstream caches operate at chunk granularity anyway).
    """
    if filled_chunks <= 0:
        return []
    k = cache.chunk_bytes
    c0, c1 = request.chunks(k)
    # Clamp to the request's own chunk range: a cache can only have
    # filled chunks the request touched, so a larger report (e.g. from a
    # buggy or wrapped implementation) must not make the upstream fill
    # wider than the request itself.
    last = min(c0 + filled_chunks, c1 + 1)
    b0 = c0 * k
    b1 = last * k - 1
    return [Request(t=request.t, video=request.video, b0=b0, b1=b1)]


def _merge_by_time(
    edge_traces: Mapping[str, Iterable[Request]],
) -> Iterable[Tuple[str, Request]]:
    """Merge per-edge traces into one time-ordered stream.

    Time-order validation is folded into the merge walk (one pass, so
    one-shot generator traces work): a disordered trace raises with its
    edge and index the moment the offending request is pulled.  Requests
    merged before that point have already been replayed — the failure is
    fast but not transactional.
    """

    def stream(name: str, trace: Iterable[Request]):
        last_t = float("-inf")
        for i, r in enumerate(trace):
            if r.t < last_t:
                # heapq.merge would silently interleave an unsorted
                # stream and feed caches time-travelling requests.
                raise ValueError(
                    f"trace for edge {name!r} not time-ordered at "
                    f"index {i}: t={r.t} after t={last_t}"
                )
            last_t = r.t
            yield r.t, i, name, r

    streams = [stream(name, trace) for name, trace in edge_traces.items()]
    for _t, _i, name, request in heapq.merge(*streams):
        yield name, request


