"""Hierarchical multi-server replay (the Section 10 CDN-wide setting).

Each edge server receives its own user trace.  Per request:

* the edge's cache decides serve-or-redirect exactly as in the
  single-server model;
* a **redirect** forwards the original request along ``redirect_to``
  (the secondary map); after ``max_redirects`` hops, or when no target
  remains, the origin serves it;
* a **serve with cache-fill** generates *fill requests* to the server's
  ``fill_from`` target — one per contiguous chunk run, chunk-aligned —
  which that server handles like any other request ("a request ... may
  be received from a user or from another (downstream) server for a
  cache fill").  Fills recurse up to the origin.

Traces from multiple edges are merged in timestamp order so every cache
sees non-decreasing time.  The result carries per-server metrics plus
CDN-wide aggregates: origin egress (the traffic the CDN failed to
absorb at its "lines of defense") and redirect-hop counts.

A :class:`~repro.cdn.faults.FaultSchedule` can be injected to model
server outages, cold restarts (cache wipes), degraded ingress links
and origin brownouts; see :mod:`repro.cdn.faults` for the routing and
accounting semantics.  Without a schedule the fault machinery costs a
single ``is None`` check per hop and the replay is byte-identical to a
fault-unaware one.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.base import CacheResponse, Decision
from repro.sim.instrumentation import (
    EngineEvent,
    ProgressCallback,
    ProgressTicker,
    RunReport,
    StageTimer,
)
from repro.sim.metrics import MetricsCollector, TrafficSummary
from repro.trace.requests import Request
from repro.cdn.faults import FaultRuntime, FaultSchedule, ServerAvailability
from repro.cdn.topology import CdnTopology

__all__ = ["CdnSimulator", "CdnSimulationResult"]


@dataclass
class CdnSimulationResult:
    """Per-server and CDN-wide outcomes of one multi-server replay."""

    topology: CdnTopology
    per_server: Dict[str, MetricsCollector]
    #: bytes served by the origin (requests the CDN could not absorb)
    origin_bytes: int = 0
    #: user requests that ended at the origin via redirects
    origin_requests: int = 0
    #: cache-fill requests that reached the origin (directly or after
    #: redirects at intermediate servers)
    origin_fill_requests: int = 0
    #: bytes of ``origin_bytes`` attributable to cache fills
    origin_fill_bytes: int = 0
    #: distribution of redirect chain lengths: hops -> request count
    redirect_hops: Dict[int, int] = field(default_factory=dict)
    num_user_requests: int = 0
    user_requested_bytes: int = 0
    #: user-requested bytes that ended up served by the origin
    origin_redirect_bytes: int = 0
    #: user requests dropped by an origin brownout (served by no one)
    requests_lost: int = 0
    lost_bytes: int = 0
    #: cache-fill requests dropped by an origin brownout (the transfer
    #: is assumed to succeed on transport-level retry, so cache state
    #: stays consistent; the degraded service is what is counted)
    fill_requests_lost: int = 0
    fill_bytes_lost: int = 0
    #: per-server availability accounting; empty when no faults ran
    availability: Dict[str, ServerAvailability] = field(default_factory=dict)
    #: the fault schedule this replay ran under (None = fault-free)
    faults: Optional[FaultSchedule] = None
    #: engine observability: wall time, request rate, stage breakdown
    report: Optional[RunReport] = None

    def summary(self, server: str) -> TrafficSummary:
        """Whole-run traffic totals of one named server."""
        return self.per_server[server].totals()

    @property
    def origin_offload(self) -> float:
        """Fraction of user-requested bytes the cache tier absorbed.

        This counts only redirected-to-origin traffic against the CDN;
        fills that transited the origin are visible in ``origin_bytes``.
        """
        if self.user_requested_bytes == 0:
            return float("nan")
        return 1.0 - self.origin_redirect_bytes / self.user_requested_bytes

    @property
    def availability_ratio(self) -> float:
        """Fraction of user requests that were served by *someone*.

        1.0 in a fault-free replay; below 1.0 only when origin
        brownouts dropped requests end to end.
        """
        if self.num_user_requests == 0:
            return float("nan")
        return 1.0 - self.requests_lost / self.num_user_requests

    def describe(self) -> str:
        """Multi-line human-readable report of the replay."""
        lines = [
            f"CDN replay: {self.num_user_requests} user requests, "
            f"origin served {self.origin_bytes / 1e9:.2f} GB "
            f"({self.origin_requests} redirected-to-origin requests)"
        ]
        if self.faults is not None:
            lines.append(
                f"  faults: {self.faults.describe()} -> "
                f"{self.requests_lost} lost requests "
                f"(availability {self.availability_ratio:.4f})"
            )
        for name, collector in sorted(self.per_server.items()):
            s = collector.totals()
            if s.num_requests == 0:
                continue
            lines.append(
                f"  {name}: eff={s.efficiency:.3f} "
                f"redirect={s.redirect_ratio:.3f} ingress={s.ingress_fraction:.3f} "
                f"({s.num_requests} requests)"
            )
        return "\n".join(lines)


class CdnSimulator:
    """Replays per-edge user traces through a :class:`CdnTopology`.

    ``faults`` (optional) injects the :mod:`repro.cdn.faults` event
    schedule: down servers are skipped via failover routing, cold
    restarts wipe cache state at recovery, degraded links and origin
    brownouts are accounted.  ``faults=None`` and an empty schedule are
    equivalent — and exactly free.
    """

    def __init__(
        self,
        topology: CdnTopology,
        max_redirects: int = 4,
        faults: Optional[FaultSchedule] = None,
    ) -> None:
        if max_redirects < 1:
            raise ValueError("max_redirects must be >= 1")
        self.topology = topology
        self.max_redirects = max_redirects
        self.faults = faults
        #: the live FaultRuntime while :meth:`run` executes (None
        #: otherwise, and None throughout for empty/absent schedules)
        self._rt: Optional[FaultRuntime] = None

    def run(
        self,
        edge_traces: Mapping[str, Sequence[Request]],
        interval: float = 3600.0,
        progress: Optional[ProgressCallback] = None,
        progress_every: int = 8192,
    ) -> CdnSimulationResult:
        """Replay ``edge_traces`` (server name -> its user trace)."""
        for name, trace in edge_traces.items():
            if name not in self.topology:
                raise KeyError(f"trace for unknown server {name!r}")
            if self.topology[name].is_origin:
                raise ValueError("user traces cannot target the origin directly")
            last_t = float("-inf")
            for index, request in enumerate(trace):
                if request.t < last_t:
                    # Fail before any cache mutates: heapq.merge would
                    # silently interleave an unsorted stream and feed
                    # caches time-travelling requests.
                    raise ValueError(
                        f"trace for edge {name!r} not time-ordered at "
                        f"index {index}: t={request.t} after t={last_t}"
                    )
                last_t = request.t

        collectors: Dict[str, MetricsCollector] = {}
        for name, server in self.topology.servers.items():
            if server.cache is not None:
                collectors[name] = MetricsCollector(
                    server.cache.cost_model,
                    chunk_bytes=server.cache.chunk_bytes,
                    interval=interval,
                )

        result = CdnSimulationResult(
            topology=self.topology, per_server=collectors
        )

        rt = self.faults.runtime(self.topology) if self.faults is not None else None
        self._rt = rt
        events: List[EngineEvent] = []

        timer = StageTimer()
        total = sum(len(trace) for trace in edge_traces.values())
        ticker = ProgressTicker(progress, every=progress_every, total=total)
        t0 = time.perf_counter()
        try:
            if rt is None:
                for name, request in _merge_by_time(edge_traces):
                    result.num_user_requests += 1
                    result.user_requested_bytes += request.num_bytes
                    hops = self._handle(name, request, result, hop=0)
                    result.redirect_hops[hops] = result.redirect_hops.get(hops, 0) + 1
                    ticker.tick(result.num_user_requests)
            else:
                for name, request in _merge_by_time(edge_traces):
                    for wiped in rt.advance_to(request.t):
                        events.append(
                            EngineEvent(request.t, "cache-wipe", wiped)
                        )
                    result.num_user_requests += 1
                    result.user_requested_bytes += request.num_bytes
                    hops = self._handle(name, request, result, hop=0, edge=name)
                    result.redirect_hops[hops] = result.redirect_hops.get(hops, 0) + 1
                    ticker.tick(result.num_user_requests)
        finally:
            self._rt = None
        wall = time.perf_counter() - t0
        timer.add("replay", wall, result.num_user_requests)
        ticker.finish(result.num_user_requests)

        extra: Dict[str, object] = {
            "edges": len(edge_traces),
            "servers": len(self.topology.servers),
        }
        if rt is not None:
            result.availability = rt.availability
            result.faults = self.faults
            extra["fault_events"] = len(self.faults)
            extra["requests_lost"] = result.requests_lost
        result.report = RunReport(
            engine="cdn",
            mode="serial",
            wall_seconds=wall,
            num_requests=result.num_user_requests,
            num_caches=len(collectors),
            stages=timer.timings(),
            extra=extra,
            events=events,
        )
        return result

    # -- internals -----------------------------------------------------------

    def _handle(
        self,
        server_name: str,
        request: Request,
        result: CdnSimulationResult,
        hop: int,
        user: bool = True,
        edge: Optional[str] = None,
        failover: bool = False,
    ) -> int:
        """Process ``request`` at ``server_name``; returns redirect hops.

        ``user`` distinguishes the user path from the fill path: a
        cache-fill request that climbs to the origin (directly, or after
        being redirected by an intermediate server) is origin *load* but
        not a failure of the redirect tier, so it must not count toward
        ``origin_requests`` / ``origin_redirect_bytes`` — those feed
        ``origin_offload``, which is defined over user traffic only.

        ``edge`` (faulted replays only) is the server the user request
        originally landed on — losses are attributed there.
        ``failover`` marks a request that already skipped a down server;
        whoever serves it counts its bytes as backup traffic.
        """
        rt = self._rt
        server = self.topology[server_name]

        if rt is not None and not server.is_origin and rt.is_down(
            server_name, request.t
        ):
            # Failover: a down server is skipped along the secondary
            # map (user path) or the next fill hop (fill path), with
            # the origin as the final backstop.
            stats = rt.availability[server_name]
            stats.failover_hops += 1
            if user:
                stats.down_requests += 1
                target = server.redirect_to
                if target is None or hop + 1 >= self.max_redirects:
                    target = self.topology.origin_name
                return self._handle(
                    target, request, result, hop + 1,
                    user=True, edge=edge, failover=True,
                )
            stats.down_fills += 1
            target = server.fill_from
            if target is None:
                target = self.topology.origin_name
            return self._handle(
                target, request, result, hop,
                user=False, edge=edge, failover=True,
            )

        if server.is_origin:
            if rt is not None and rt.origin_drops(request.t):
                # Brownout shed: the request is served by no one.
                if user:
                    result.requests_lost += 1
                    result.lost_bytes += request.num_bytes
                    if edge is not None:
                        stats = rt.availability[edge]
                        stats.lost_requests += 1
                        stats.lost_bytes += request.num_bytes
                        collector = result.per_server.get(edge)
                        if collector is not None:
                            collector.record_lost(request.t, request.num_bytes)
                else:
                    result.fill_requests_lost += 1
                    result.fill_bytes_lost += request.num_bytes
                return hop
            result.origin_bytes += request.num_bytes
            if user:
                result.origin_requests += 1
                result.origin_redirect_bytes += request.num_bytes
            else:
                result.origin_fill_requests += 1
                result.origin_fill_bytes += request.num_bytes
            return hop

        assert server.cache is not None
        response = server.cache.handle(request)
        result.per_server[server_name].record(request, response)

        if rt is not None:
            if failover and response.decision is Decision.SERVE:
                stats = rt.availability[server_name]
                stats.backup_requests += 1
                stats.backup_bytes += request.num_bytes
            if response.filled_chunks:
                rt.note_fill(
                    server_name,
                    request.t,
                    response.filled_chunks * server.cache.chunk_bytes,
                    len(server.cache),
                )

        if response.decision is Decision.SERVE:
            if response.filled_chunks:
                self._fill_upstream(server, request, response, result, edge=edge)
            return hop

        # Redirect: follow the secondary map; origin backstops.
        target = server.redirect_to
        if target is None or hop + 1 >= self.max_redirects:
            target = self.topology.origin_name
        return self._handle(
            target, request, result, hop + 1,
            user=user, edge=edge, failover=failover,
        )

    def _fill_upstream(
        self,
        server,
        request: Request,
        response: CacheResponse,
        result: CdnSimulationResult,
        edge: Optional[str] = None,
    ) -> None:
        """Send this server's cache-fill as requests to its fill source."""
        target = server.fill_from
        if target is None:
            return
        cache = server.cache
        for fill in _fill_requests(request, cache, response.filled_chunks):
            self._handle(target, fill, result, hop=0, user=False, edge=edge)


def _fill_requests(request: Request, cache, filled_chunks: int) -> List[Request]:
    """Chunk-aligned upstream requests approximating this fill.

    The cache does not report *which* chunks it filled, only how many;
    the missing ones were, by construction, within the request's chunk
    range.  One aligned request covering ``filled_chunks`` chunks from
    the range start is the right volume and locality for upstream
    accounting (upstream caches operate at chunk granularity anyway).
    """
    if filled_chunks <= 0:
        return []
    k = cache.chunk_bytes
    c0, c1 = request.chunks(k)
    # Clamp to the request's own chunk range: a cache can only have
    # filled chunks the request touched, so a larger report (e.g. from a
    # buggy or wrapped implementation) must not make the upstream fill
    # wider than the request itself.
    last = min(c0 + filled_chunks, c1 + 1)
    b0 = c0 * k
    b1 = last * k - 1
    return [Request(t=request.t, video=request.video, b0=b0, b1=b1)]


def _merge_by_time(
    edge_traces: Mapping[str, Sequence[Request]],
) -> Iterable[Tuple[str, Request]]:
    """Merge per-edge traces into one time-ordered stream."""

    def stream(name: str, trace: Sequence[Request]):
        for i, r in enumerate(trace):
            yield r.t, i, name, r

    streams = [stream(name, trace) for name, trace in edge_traces.items()]
    for _t, _i, name, request in heapq.merge(*streams):
        yield name, request
