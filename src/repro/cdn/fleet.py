"""Fleet-level alpha_F2R assignment (the §10 optimization layer).

"Cafe Cache with defined behavior through alpha_F2R (Figure 5) can as
well be used as the underlying building block to adjust traffic between
any group of constrained/non-constrained servers, which can be done
through finer tuning of alpha_F2R for correlated servers."

The cache gives each server a *measurable* tradeoff curve: every alpha
maps to an (ingress bytes, redirected bytes) operating point (Figure 5).
Given those curves, the CDN-wide question is an assignment problem:

    choose one alpha per server
    minimizing   total redirected bytes
    subject to   total ingress <= budget

— the natural formulation for a shared, constrained backbone that all
cache-fill traffic traverses.  With per-server curves this is a
multiple-choice knapsack, solved here exactly by dynamic programming
over a discretized budget grid.

Pipeline: :func:`measure_tradeoff_curves` replays each server's trace
across an alpha grid (Figure 5 per server), then
:func:`optimize_alpha_assignment` picks the fleet's operating points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.sim.engine import replay
from repro.sim.runner import build_cache
from repro.trace.requests import Request

__all__ = [
    "OperatingPoint",
    "FleetAssignment",
    "measure_tradeoff_curves",
    "optimize_alpha_assignment",
]


@dataclass(frozen=True, slots=True)
class OperatingPoint:
    """One measured (alpha -> traffic) point of a server's curve."""

    alpha: float
    ingress_bytes: int
    redirected_bytes: int
    egress_bytes: int
    efficiency: float


@dataclass
class FleetAssignment:
    """The optimizer's output."""

    #: server -> chosen alpha
    alphas: Dict[str, float]
    total_ingress_bytes: int
    total_redirected_bytes: int
    ingress_budget_bytes: int

    @property
    def budget_utilization(self) -> float:
        if self.ingress_budget_bytes == 0:
            return float("nan")
        return self.total_ingress_bytes / self.ingress_budget_bytes


def measure_tradeoff_curves(
    traces: Mapping[str, Sequence[Request]],
    disk_chunks: Mapping[str, int],
    alphas: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    algorithm: str = "Cafe",
    steady_fraction: float = 0.5,
) -> Dict[str, List[OperatingPoint]]:
    """Per-server Figure 5 curves: replay each trace at every alpha.

    Traffic is measured over the steady-state window so warm-up fills
    do not distort the curves.
    """
    if not traces:
        raise ValueError("no traces given")
    missing = [s for s in traces if s not in disk_chunks]
    if missing:
        raise ValueError(f"servers without disk size: {missing}")
    curves: Dict[str, List[OperatingPoint]] = {}
    for server, trace in traces.items():
        points = []
        for alpha in alphas:
            cache = build_cache(algorithm, disk_chunks[server], alpha_f2r=alpha)
            result = replay(cache, trace)
            steady = result.metrics.steady_state(steady_fraction)
            points.append(
                OperatingPoint(
                    alpha=alpha,
                    ingress_bytes=steady.ingress_bytes,
                    redirected_bytes=steady.redirected_bytes,
                    egress_bytes=steady.egress_bytes,
                    efficiency=steady.efficiency,
                )
            )
        curves[server] = points
    return curves


def optimize_alpha_assignment(
    curves: Mapping[str, Sequence[OperatingPoint]],
    ingress_budget_bytes: int,
    budget_bins: int = 400,
) -> FleetAssignment:
    """Exact multiple-choice knapsack over the discretized budget.

    Minimizes total redirected bytes with total ingress held within
    ``ingress_budget_bytes``.  Ingress values are quantized onto
    ``budget_bins`` levels (rounded *up*, so the budget is never
    exceeded by quantization).  Raises ``ValueError`` when even the
    most ingress-frugal option per server cannot fit the budget.
    """
    if not curves:
        raise ValueError("no tradeoff curves given")
    if ingress_budget_bytes < 0:
        raise ValueError("ingress budget must be non-negative")
    if budget_bins < 1:
        raise ValueError("budget_bins must be >= 1")

    servers = sorted(curves)
    min_needed = sum(
        min(p.ingress_bytes for p in curves[s]) for s in servers
    )
    if min_needed > ingress_budget_bytes:
        raise ValueError(
            f"infeasible: even the most frugal assignment ingresses "
            f"{min_needed} B > budget {ingress_budget_bytes} B"
        )

    unit = max(1, -(-ingress_budget_bytes // budget_bins))  # ceil division
    bins = ingress_budget_bytes // unit

    def cost_of(point: OperatingPoint) -> int:
        # round ingress *up* so quantization never exceeds the budget
        return -(-point.ingress_bytes // unit)

    inf = float("inf")
    # layers[k][b] = min total redirected bytes over the first k
    # servers with total quantized ingress <= b.  layers[0] = zeros:
    # no servers, no traffic.  Each layer stays monotone non-increasing
    # in b by induction, so layers[-1][bins] is the optimum.
    layers: List[np.ndarray] = [np.zeros(bins + 1)]
    for server in servers:
        prev = layers[-1]
        new = np.full(bins + 1, inf)
        for point in curves[server]:
            cost = cost_of(point)
            if cost > bins:
                continue
            candidate = np.full(bins + 1, inf)
            candidate[cost:] = prev[: bins + 1 - cost] + point.redirected_bytes
            np.minimum(new, candidate, out=new)
        layers.append(new)

    if not np.isfinite(layers[-1][bins]):
        raise ValueError(
            "infeasible under budget quantization; raise budget_bins"
        )

    # Backtrack by value equality (sums of integer byte counts are
    # exact in float64 far beyond realistic traffic volumes).
    alphas: Dict[str, float] = {}
    total_ingress = 0
    total_redirected = 0
    b = bins
    for k in range(len(servers) - 1, -1, -1):
        server = servers[k]
        prev, cur = layers[k], layers[k + 1]
        for point in curves[server]:
            cost = cost_of(point)
            if cost <= b and prev[b - cost] + point.redirected_bytes == cur[b]:
                alphas[server] = point.alpha
                total_ingress += point.ingress_bytes
                total_redirected += point.redirected_bytes
                b -= cost
                break
        else:  # pragma: no cover - equality always holds by construction
            raise RuntimeError(f"backtrack failed at server {server!r}")
    return FleetAssignment(
        alphas=alphas,
        total_ingress_bytes=total_ingress,
        total_redirected_bytes=total_redirected,
        ingress_budget_bytes=ingress_budget_bytes,
    )
