"""Dynamic alpha_F2R adjustment: the Section 10 control-loop extension.

"Furthermore, dynamic adjustment of alpha_F2R, although not recommended
in a wide range due to the resultant cache pollution and cache churn,
can be considered in a small range through a control loop for better
responsiveness to dynamics."

:class:`AlphaController` wraps an online cache and nudges its
``alpha_f2r`` multiplicatively so the measured ingress-to-egress
fraction converges to an operator-set target — the quantity Figure 5
shows alpha controls.  The loop is deliberately conservative:

* bounded range (default half/double the base alpha — the paper's
  "small range");
* multiplicative-increase/decrease with a small gain, evaluated on
  windowed counters rather than per request;
* a minimum egress volume per window before acting, so quiet hours do
  not swing the knob on noise.

Works with any online cache because every algorithm in
:mod:`repro.core` reads its cost model at decision time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from repro.core.base import CacheResponse, VideoCache
from repro.core.costs import CostModel
from repro.trace.requests import Request

__all__ = ["AlphaController", "AlphaAdjustment"]


@dataclass(frozen=True, slots=True)
class AlphaAdjustment:
    """One control-loop step, for inspection/plotting."""

    t: float
    measured_ingress_fraction: float
    alpha_before: float
    alpha_after: float


@dataclass
class AlphaController:
    """Integral-style controller holding a cache at a target ingress."""

    cache: VideoCache
    target_ingress_fraction: float
    #: seconds between adjustments (a few hours keeps churn low)
    interval: float = 4 * 3600.0
    #: multiplicative step size per unit of relative error
    gain: float = 0.5
    #: clamp range as multiples of the cache's starting alpha
    range_factor: float = 2.0
    #: minimum egress bytes in a window before adjusting (noise guard)
    min_window_egress: int = 64 << 20

    adjustments: List[AlphaAdjustment] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.cache.offline:
            raise ValueError("alpha control requires an online cache")
        if not 0.0 < self.target_ingress_fraction < 1.0:
            raise ValueError("target_ingress_fraction must be in (0, 1)")
        if self.interval <= 0 or self.gain <= 0:
            raise ValueError("interval and gain must be positive")
        if self.range_factor < 1.0:
            raise ValueError("range_factor must be >= 1")
        base = self.cache.cost_model.alpha_f2r
        self._alpha_min = base / self.range_factor
        self._alpha_max = base * self.range_factor
        self._window_start: float | None = None
        self._window_ingress = 0
        self._window_egress = 0

    @property
    def alpha(self) -> float:
        return self.cache.cost_model.alpha_f2r

    def handle(self, request: Request) -> CacheResponse:
        """Drop-in replacement for ``cache.handle`` with control."""
        response = self.cache.handle(request)
        self._observe(request, response)
        return response

    # -- internals -----------------------------------------------------------

    def _observe(self, request: Request, response: CacheResponse) -> None:
        now = request.t
        if self._window_start is None:
            self._window_start = now
        if response.served:
            self._window_egress += request.num_bytes
            self._window_ingress += response.filled_chunks * self.cache.chunk_bytes
        if now - self._window_start >= self.interval:
            self._adjust(now)
            self._window_start = now
            self._window_ingress = 0
            self._window_egress = 0

    def _adjust(self, now: float) -> None:
        if self._window_egress < self.min_window_egress:
            return
        measured = self._window_ingress / self._window_egress
        # relative error > 0 means too much ingress -> raise alpha
        # (make fills costlier); the log keeps steps symmetric, and the
        # clamp stops a near-zero window (e.g. right after a big fill
        # burst completed) from slamming alpha across its whole range.
        error = math.log(max(measured, 1e-6) / self.target_ingress_fraction)
        error = max(-1.0, min(1.0, error))
        before = self.alpha
        after = min(
            self._alpha_max,
            max(self._alpha_min, before * math.exp(self.gain * error)),
        )
        if after != before:
            self.cache.cost_model = CostModel(after)
        self.adjustments.append(
            AlphaAdjustment(
                t=now,
                measured_ingress_fraction=measured,
                alpha_before=before,
                alpha_after=after,
            )
        )
