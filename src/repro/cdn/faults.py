"""Deterministic fault injection for multi-server replay.

The paper's framing is cache servers as "strong lines of defense" (§1,
§10) that keep traffic off constrained ingress links and the origin.
This module asks the follow-up question the paper leaves open: what
happens when a line of defense *falls*?  It models four failure kinds
as timed, seedable events:

* ``outage`` — the server is unreachable for a window; its cache state
  survives (a network partition or a crashed frontend);
* ``restart`` — the server is unreachable for a window and comes back
  **cold**: its cache is wiped at recovery time (a disk swap or a
  process restart without persistence);
* ``degrade`` — the server's ingress link is degraded for a window:
  every byte it cache-fills effectively costs ``factor`` times the
  normal fill cost (congested backbone, lossy transit);
* ``brownout`` — the *origin* drops a fraction of the requests that
  reach it during a window (overload shedding).  Drops are decided by
  a dedicated ``random.Random(schedule.seed)`` stream, so a schedule
  replays bit-identically.

Routing semantics inside :class:`~repro.cdn.multiserver.CdnSimulator`:

* a user request that targets a *down* server fails over along the
  topology's secondary map (``redirect_to``), bounded by
  ``max_redirects`` and backstopped by the origin;
* a cache fill that targets a down upstream retries against that
  server's own ``fill_from`` hop, climbing until the origin (fill
  chains are acyclic by construction);
* a request the origin drops during a brownout is **lost** — the
  failure the defense lines exist to prevent — and is accounted both
  CDN-wide and at the edge it landed on.

Everything is deterministic: the same topology, traces and schedule
produce byte-identical results, and an **empty schedule (or none) is
exactly free** — the simulator's hot path does a single ``is None``
check and stays byte-identical to a fault-unaware replay.
"""

from __future__ import annotations

import pickle
import random
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cdn.topology import CdnTopology

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "ServerAvailability",
    "FaultRuntime",
]

FAULT_KINDS = ("outage", "restart", "degrade", "brownout")


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One timed fault: a server misbehaves during ``[t, t + duration)``.

    ``factor`` is the fill-cost multiplier of ``degrade`` events (> 1);
    ``drop_fraction`` is the share of requests a ``brownout`` origin
    drops (in ``(0, 1]``).  Both are ignored by the other kinds.
    """

    kind: str
    server: str
    t: float
    duration: float
    factor: float = 2.0
    drop_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.duration <= 0:
            raise ValueError(f"fault duration must be positive, got {self.duration}")
        if self.kind == "degrade" and self.factor <= 1.0:
            raise ValueError(
                f"degrade factor must be > 1 (got {self.factor}); "
                "factor 1 is not a fault"
            )
        if self.kind == "brownout" and not 0.0 < self.drop_fraction <= 1.0:
            raise ValueError(
                f"brownout drop_fraction must be in (0, 1], got {self.drop_fraction}"
            )

    @property
    def t_end(self) -> float:
        return self.t + self.duration

    def describe(self) -> str:
        extra = ""
        if self.kind == "degrade":
            extra = f" x{self.factor:g}"
        elif self.kind == "brownout":
            extra = f" drop={self.drop_fraction:g}"
        return f"{self.kind}[{self.server}] t={self.t:g}+{self.duration:g}{extra}"


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-sorted set of fault events plus a drop seed.

    The schedule is pure data — it knows nothing about a topology until
    :meth:`runtime` binds it to one (validating that outage/restart/
    degrade target cache servers and brownouts target the origin).
    """

    events: Tuple[FaultEvent, ...] = ()
    #: seed of the brownout drop stream (irrelevant without brownouts)
    seed: int = 0

    def __init__(
        self, events: Iterable[FaultEvent] = (), seed: int = 0
    ) -> None:
        ordered = tuple(sorted(events, key=lambda e: (e.t, e.server, e.kind)))
        object.__setattr__(self, "events", ordered)
        object.__setattr__(self, "seed", seed)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def for_server(self, name: str) -> Tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.server == name)

    def describe(self) -> str:
        if not self.events:
            return "no faults"
        return "; ".join(e.describe() for e in self.events)

    def runtime(self, topology: CdnTopology) -> Optional["FaultRuntime"]:
        """Bind the schedule to a topology; None when the schedule is empty."""
        if not self.events:
            return None
        return FaultRuntime(self, topology)

    @classmethod
    def random(
        cls,
        cache_servers: Sequence[str],
        origin: str,
        duration: float,
        seed: int,
        num_events: int = 4,
        min_duration_fraction: float = 0.02,
        max_duration_fraction: float = 0.10,
    ) -> "FaultSchedule":
        """A seeded random schedule over ``[0, duration)``.

        Used by the fault fuzzer: outage/restart/degrade events land on
        random cache servers, plus (with probability 1/2) one origin
        brownout.  Identical arguments produce identical schedules.
        """
        if not cache_servers:
            raise ValueError("need at least one cache server")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        rng = random.Random(seed)
        events: List[FaultEvent] = []
        kinds = ("outage", "restart", "degrade")
        for _ in range(num_events):
            span = duration * rng.uniform(
                min_duration_fraction, max_duration_fraction
            )
            start = rng.uniform(0.0, max(duration - span, 0.0))
            events.append(
                FaultEvent(
                    kind=rng.choice(kinds),
                    server=rng.choice(list(cache_servers)),
                    t=start,
                    duration=span,
                    factor=rng.choice((1.5, 2.0, 4.0)),
                )
            )
        if rng.random() < 0.5:
            span = duration * rng.uniform(
                min_duration_fraction, max_duration_fraction
            )
            events.append(
                FaultEvent(
                    kind="brownout",
                    server=origin,
                    t=rng.uniform(0.0, max(duration - span, 0.0)),
                    duration=span,
                    drop_fraction=rng.choice((0.25, 0.5, 1.0)),
                )
            )
        return cls(events, seed=seed)


@dataclass
class ServerAvailability:
    """Per-server availability accounting of one faulted replay."""

    #: user requests that targeted this server while it was down
    down_requests: int = 0
    #: cache-fill requests that targeted this server while it was down
    down_fills: int = 0
    #: extra routing hops caused by this server being down
    failover_hops: int = 0
    #: requests this server served on behalf of a down server
    backup_requests: int = 0
    backup_bytes: int = 0
    #: user requests landing on this edge that were ultimately dropped
    lost_requests: int = 0
    lost_bytes: int = 0
    #: cold restarts applied (cache wiped at recovery)
    restarts: int = 0
    #: ingress spent re-warming the cache after each cold restart
    refill_bytes: int = 0
    #: seconds from recovery until occupancy regained its pre-wipe level
    rewarm_seconds: List[float] = field(default_factory=list)
    #: fill bytes moved while the ingress link was degraded
    degraded_fill_bytes: int = 0
    #: cost-equivalent extra ingress: sum((factor - 1) * fill_bytes)
    extra_ingress_bytes: float = 0.0

    def to_dict(self) -> dict:
        return {
            "down_requests": self.down_requests,
            "down_fills": self.down_fills,
            "failover_hops": self.failover_hops,
            "backup_requests": self.backup_requests,
            "backup_bytes": self.backup_bytes,
            "lost_requests": self.lost_requests,
            "lost_bytes": self.lost_bytes,
            "restarts": self.restarts,
            "refill_bytes": self.refill_bytes,
            "rewarm_seconds": list(self.rewarm_seconds),
            "degraded_fill_bytes": self.degraded_fill_bytes,
            "extra_ingress_bytes": self.extra_ingress_bytes,
        }


class _IntervalSet:
    """Merged half-open intervals with O(log n) point queries."""

    __slots__ = ("starts", "ends")

    def __init__(self, intervals: Iterable[Tuple[float, float]]) -> None:
        merged: List[List[float]] = []
        for start, end in sorted(intervals):
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        self.starts = [m[0] for m in merged]
        self.ends = [m[1] for m in merged]

    def covers(self, t: float) -> bool:
        i = bisect_right(self.starts, t) - 1
        return i >= 0 and t < self.ends[i]


class _FactorIntervals:
    """Point query of the (maximum) active degrade factor at a time."""

    __slots__ = ("intervals",)

    def __init__(self, intervals: Iterable[Tuple[float, float, float]]) -> None:
        self.intervals = sorted(intervals)

    def factor_at(self, t: float) -> float:
        worst = 1.0
        for start, end, factor in self.intervals:
            if start > t:
                break
            if t < end and factor > worst:
                worst = factor
        return worst


class FaultRuntime:
    """A :class:`FaultSchedule` bound to a topology, ready to replay.

    Holds the per-server interval indexes, the pending cache wipes, the
    pristine cache blobs that implement a cold restart, and the
    availability counters.  One runtime serves one replay — build a
    fresh one (via :meth:`FaultSchedule.runtime`) per run.
    """

    def __init__(self, schedule: FaultSchedule, topology: CdnTopology) -> None:
        self.schedule = schedule
        self.topology = topology
        origin = topology.origin_name
        self.availability: Dict[str, ServerAvailability] = {
            name: ServerAvailability() for name in topology.servers
        }
        self._drop_rng = random.Random(schedule.seed)

        down: Dict[str, List[Tuple[float, float]]] = {}
        degrade: Dict[str, List[Tuple[float, float, float]]] = {}
        brownout: List[Tuple[float, float, float]] = []
        wipes: List[Tuple[float, str]] = []
        for event in schedule.events:
            if event.server not in topology:
                raise ValueError(
                    f"fault event targets unknown server {event.server!r}"
                )
            is_origin = event.server == origin
            if event.kind == "brownout":
                if not is_origin:
                    raise ValueError(
                        f"brownout events must target the origin "
                        f"({origin!r}), got {event.server!r}"
                    )
                brownout.append((event.t, event.t_end, event.drop_fraction))
            else:
                if is_origin:
                    raise ValueError(
                        f"{event.kind} events cannot target the origin "
                        "(it has no cache and never goes down); "
                        "use a brownout instead"
                    )
                if event.kind in ("outage", "restart"):
                    down.setdefault(event.server, []).append(
                        (event.t, event.t_end)
                    )
                    if event.kind == "restart":
                        wipes.append((event.t_end, event.server))
                else:
                    degrade.setdefault(event.server, []).append(
                        (event.t, event.t_end, event.factor)
                    )

        self._down = {name: _IntervalSet(iv) for name, iv in down.items()}
        self._degrade = {
            name: _FactorIntervals(iv) for name, iv in degrade.items()
        }
        self._brownout = sorted(brownout)
        #: (recovery_time, server) queue; applied lazily as replay time
        #: passes each recovery instant
        self._wipes = sorted(wipes)
        self._wipe_index = 0
        #: server -> (pre-wipe occupancy target, recovery time) while
        #: the cache is re-warming after a cold restart
        self._rewarming: Dict[str, Tuple[int, float]] = {}
        #: pristine cache state, captured at replay start, used to
        #: implement the wipe (a cold restart restores t=0 state)
        self._pristine: Dict[str, bytes] = {}
        for _, name in self._wipes:
            if name not in self._pristine:
                self._pristine[name] = pickle.dumps(
                    self._wipe_target(topology[name]),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )

    # -- queries (called per request, must stay cheap) -----------------------

    def is_down(self, name: str, t: float) -> bool:
        intervals = self._down.get(name)
        return intervals is not None and intervals.covers(t)

    def fill_factor(self, name: str, t: float) -> float:
        intervals = self._degrade.get(name)
        return 1.0 if intervals is None else intervals.factor_at(t)

    def origin_drops(self, t: float) -> bool:
        """Whether the origin sheds this request (consumes drop stream).

        The drop stream advances only for requests arriving inside a
        brownout window, so determinism is preserved regardless of how
        much traffic flows outside the windows.
        """
        for start, end, fraction in self._brownout:
            if start > t:
                break
            if t < end:
                return self._drop_rng.random() < fraction
        return False

    # -- timeline ------------------------------------------------------------

    def advance_to(self, t: float) -> List[str]:
        """Apply every cache wipe whose recovery time has passed.

        Returns the names of the servers wiped (for event logging).
        """
        wiped: List[str] = []
        while (
            self._wipe_index < len(self._wipes)
            and self._wipes[self._wipe_index][0] <= t
        ):
            recovery_t, name = self._wipes[self._wipe_index]
            self._wipe_index += 1
            self._apply_wipe(name, recovery_t)
            wiped.append(name)
        return wiped

    def note_fill(self, name: str, t: float, fill_bytes: int, occupancy: int) -> None:
        """Fold one cache fill into degrade + re-warm accounting."""
        stats = self.availability[name]
        factor = self.fill_factor(name, t)
        if factor > 1.0:
            stats.degraded_fill_bytes += fill_bytes
            stats.extra_ingress_bytes += (factor - 1.0) * fill_bytes
        warming = self._rewarming.get(name)
        if warming is not None:
            stats.refill_bytes += fill_bytes
            target, recovery_t = warming
            if occupancy >= target:
                stats.rewarm_seconds.append(t - recovery_t)
                del self._rewarming[name]

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _wipe_target(server):
        """The object a wipe replaces: the inner cache when audited."""
        cache = server.cache
        if hasattr(cache, "note_wipe") and hasattr(cache, "inner"):
            return cache.inner
        return cache

    def _apply_wipe(self, name: str, recovery_t: float) -> None:
        server = self.topology[name]
        cache = server.cache
        occupancy_before = len(cache)
        pristine = pickle.loads(self._pristine[name])
        if hasattr(cache, "note_wipe") and hasattr(cache, "inner"):
            # Audited wrapper: swap the inner cache, keep the auditor
            # (so capacity/fill invariants keep holding across the wipe)
            # and let it check the wipe-emptiness invariant.
            cache.inner = pristine
            cache.note_wipe()
        else:
            server.cache = pristine
        stats = self.availability[name]
        stats.restarts += 1
        if occupancy_before > 0:
            self._rewarming[name] = (occupancy_before, recovery_t)
