"""CDN topology: servers, redirect maps and fill paths (Section 2).

A :class:`CdnServer` wires a cache to the network around it:

* ``redirect_to`` — where *redirected user requests* go: "a secondary
  map which defines the destination of redirected requests from each
  user network", e.g. a higher-level serving site or a peered sibling;
* ``fill_from`` — where *cache-fill* traffic is fetched from (a parent
  cache or the origin).

Selecting these destinations is "independent of the individual files
requested", so they are per-server attributes, not per-file lookups.
The origin is a server without a cache: it serves everything.

Two builders cover the paper's two examples of alternative locations:
:func:`hierarchy` ("a higher level, larger serving site in a cache
hierarchy, which captures redirects of its downstream servers") and
:func:`peered_edges` ("a location which also peers with the user
network(s) that the initial location serves").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.base import VideoCache

__all__ = ["CdnServer", "CdnTopology", "hierarchy", "peered_edges"]

ORIGIN = "origin"


@dataclass
class CdnServer:
    """One serving location in the CDN graph.

    ``cache=None`` marks the origin: it serves every request and never
    redirects.  Offline caches cannot participate (their future index
    cannot include the fill/redirect traffic generated at run time).
    """

    name: str
    cache: Optional[VideoCache] = None
    redirect_to: Optional[str] = None
    fill_from: Optional[str] = ORIGIN

    def __post_init__(self) -> None:
        if self.cache is not None and self.cache.offline:
            raise ValueError(
                f"server {self.name!r}: offline caches cannot run inside a "
                "CDN topology (their future traffic is not known up front)"
            )
        if self.cache is None:
            # The origin is terminal: it never redirects or fills.
            self.redirect_to = None
            self.fill_from = None

    @property
    def is_origin(self) -> bool:
        return self.cache is None


class CdnTopology:
    """A validated set of servers with redirect/fill wiring.

    Cycles are detected at construction time, with the offending path
    in the error.  ``fill_from`` cycles are always fatal: a fill is
    real data movement and must terminate at the origin.
    ``redirect_to`` rings are legitimate between peered siblings (the
    simulator bounds them with its hop limit and backstops at the
    origin), so they are allowed by default; pass
    ``allow_redirect_rings=False`` for topologies that must be acyclic
    (e.g. hierarchies), where a ring is a wiring bug that the hop limit
    would otherwise silently mask at replay time.
    """

    def __init__(
        self,
        servers: Iterable[CdnServer],
        allow_redirect_rings: bool = True,
    ) -> None:
        self.servers: Dict[str, CdnServer] = {}
        for server in servers:
            if server.name in self.servers:
                raise ValueError(f"duplicate server name {server.name!r}")
            self.servers[server.name] = server
        if not any(s.is_origin for s in self.servers.values()):
            raise ValueError("topology needs an origin (a server with cache=None)")
        self._validate_links()
        self._validate_cycles(allow_redirect_rings)

    def __getitem__(self, name: str) -> CdnServer:
        return self.servers[name]

    def __contains__(self, name: str) -> bool:
        return name in self.servers

    def __len__(self) -> int:
        return len(self.servers)

    @property
    def origin_name(self) -> str:
        return next(name for name, s in self.servers.items() if s.is_origin)

    def edges(self) -> List[str]:
        """Names of servers that are neither origin nor referenced as a
        redirect/fill target — the user-facing first-landing tier."""
        referenced = set()
        for server in self.servers.values():
            if server.redirect_to:
                referenced.add(server.redirect_to)
            if server.fill_from:
                referenced.add(server.fill_from)
        return [
            name
            for name, server in self.servers.items()
            if not server.is_origin and name not in referenced
        ]

    def _validate_links(self) -> None:
        for server in self.servers.values():
            for attr in ("redirect_to", "fill_from"):
                target = getattr(server, attr)
                if target is None:
                    continue
                if target not in self.servers:
                    raise ValueError(
                        f"server {server.name!r}: {attr} -> unknown {target!r}"
                    )
                if target == server.name:
                    raise ValueError(f"server {server.name!r}: {attr} loops to itself")

    def _validate_cycles(self, allow_redirect_rings: bool) -> None:
        """Reject cycles at construction, naming the offending path.

        Relying on ``max_redirects`` to bound a cycle at replay time
        masks the wiring bug (and, under fault-injection failover,
        silently burns the whole hop budget walking the ring), so
        cycles are surfaced here, where the fix is obvious.
        """
        cycle = self._find_cycle("fill_from")
        if cycle is not None:
            raise ValueError(
                "fill_from cycle (fills must terminate at the origin): "
                + " -> ".join(cycle)
            )
        if not allow_redirect_rings:
            cycle = self._find_cycle("redirect_to")
            if cycle is not None:
                raise ValueError(
                    "redirect_to cycle in a ring-free topology: "
                    + " -> ".join(cycle)
                )

    def _find_cycle(self, attr: str) -> Optional[List[str]]:
        """First cycle of the functional graph ``attr``, as a path.

        Each server has at most one outgoing ``attr`` edge, so a walk
        from every unvisited node either terminates (None target or a
        node already cleared) or closes a cycle; nodes proven
        cycle-free are never re-walked, keeping this O(servers).
        """
        cleared: set = set()
        for start in self.servers:
            if start in cleared:
                continue
            path: List[str] = []
            position: Dict[str, int] = {}
            node: Optional[str] = start
            while node is not None and node not in cleared:
                if node in position:
                    cycle = path[position[node]:]
                    return cycle + [node]
                position[node] = len(path)
                path.append(node)
                node = getattr(self.servers[node], attr)
            cleared.update(path)
        return None


def hierarchy(
    edge_caches: Dict[str, VideoCache],
    parent_cache: VideoCache,
    parent_name: str = "parent",
) -> CdnTopology:
    """Two-level cache hierarchy: edges -> parent -> origin.

    Edges redirect to and fill from the parent (the "higher level,
    larger serving site ... which captures redirects of its downstream
    servers"); the parent fills from and redirects to the origin.
    """
    servers = [CdnServer(name=ORIGIN, cache=None)]
    servers.append(
        CdnServer(
            name=parent_name,
            cache=parent_cache,
            redirect_to=ORIGIN,
            fill_from=ORIGIN,
        )
    )
    for name, cache in edge_caches.items():
        servers.append(
            CdnServer(
                name=name,
                cache=cache,
                redirect_to=parent_name,
                fill_from=parent_name,
            )
        )
    # A hierarchy is acyclic by definition: any redirect ring here is a
    # wiring bug, so have the topology reject it with the path.
    return CdnTopology(servers, allow_redirect_rings=False)


def peered_edges(
    edge_caches: Dict[str, VideoCache],
    peer_of: Optional[Callable[[str], str]] = None,
) -> CdnTopology:
    """Sibling edges redirecting to each other, all filling from origin.

    By default each edge redirects to the next one in (name-sorted)
    ring order — the "location which also peers with the user networks"
    alternative.  Pass ``peer_of`` for explicit pairing.
    """
    if len(edge_caches) < 2:
        raise ValueError("peered topology needs at least two edges")
    names = sorted(edge_caches)
    if peer_of is None:
        ring = {name: names[(i + 1) % len(names)] for i, name in enumerate(names)}
        peer_of = ring.__getitem__
    servers = [CdnServer(name=ORIGIN, cache=None)]
    for name in names:
        peer = peer_of(name)
        if peer not in edge_caches:
            raise ValueError(f"peer_of({name!r}) -> unknown {peer!r}")
        servers.append(
            CdnServer(
                name=name,
                cache=edge_caches[name],
                redirect_to=peer,
                fill_from=ORIGIN,
            )
        )
    return CdnTopology(servers)
