"""User-network to server mapping (Section 2, footnote 3).

The paper scopes the mapping out ("the detailed schemes for mapping
users to servers is beyond the scope of this paper") but states its
nature: "user IPs are mapped to servers primarily based on cost,
constraints and delay bounds", independent of the individual files, and
a *secondary map* defines where each network's redirected requests go.

This module implements exactly that contract so multi-server
experiments have a principled front end:

* :class:`UserNetwork` — an aggregated IP prefix with a demand
  estimate;
* :class:`ServerLocation` — a serving site with an egress-capacity
  constraint;
* :func:`assign_networks` — greedy cost-based assignment under
  capacity (largest demands first, cheapest feasible server each),
  producing primary and secondary targets per network;
* :func:`split_trace` — partition an aggregate request trace across
  networks (demand-proportional) and group it by primary server, ready
  for :class:`repro.cdn.CdnSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence

import numpy as np

from repro.trace.requests import Request

__all__ = [
    "UserNetwork",
    "ServerLocation",
    "NetworkAssignment",
    "assign_networks",
    "regional_cost",
    "split_trace",
]


@dataclass(frozen=True, slots=True)
class UserNetwork:
    """An aggregated user network (IP prefix) with estimated demand."""

    name: str
    region: str
    demand_bps: float

    def __post_init__(self) -> None:
        if self.demand_bps <= 0:
            raise ValueError(f"demand_bps must be positive, got {self.demand_bps}")


@dataclass(frozen=True, slots=True)
class ServerLocation:
    """A serving site with an egress capacity constraint."""

    name: str
    region: str
    capacity_bps: float

    def __post_init__(self) -> None:
        if self.capacity_bps <= 0:
            raise ValueError(f"capacity_bps must be positive, got {self.capacity_bps}")


@dataclass(frozen=True, slots=True)
class NetworkAssignment:
    """Primary and secondary server for one user network."""

    network: str
    primary: str
    secondary: str


CostFn = Callable[[UserNetwork, ServerLocation], float]


def regional_cost(
    network: UserNetwork,
    server: ServerLocation,
    same_region: float = 1.0,
    cross_region: float = 4.0,
) -> float:
    """Default cost model: in-region peering cheap, transit expensive.

    Stands in for the paper's "peering or transit connections with
    different traffic handling costs" — replace with a real cost matrix
    via the ``cost`` argument of :func:`assign_networks`.
    """
    return same_region if network.region == server.region else cross_region


def assign_networks(
    networks: Sequence[UserNetwork],
    servers: Sequence[ServerLocation],
    cost: CostFn = regional_cost,
    secondary_demand_fraction: float = 0.25,
) -> Dict[str, NetworkAssignment]:
    """Greedy cost-based assignment under server capacity.

    Networks are placed largest-demand first onto the cheapest server
    with remaining capacity; the secondary (redirect) target is the
    next-cheapest *distinct* server with room for
    ``secondary_demand_fraction`` of the network's demand — redirected
    traffic is a small share of the total, per the paper's model.

    Raises ``ValueError`` when total capacity cannot host total demand
    or no feasible (primary, secondary) pair exists for some network.
    """
    if not networks:
        raise ValueError("no user networks to assign")
    if len(servers) < 2:
        raise ValueError("need at least two servers (primary + secondary)")
    if not 0.0 < secondary_demand_fraction <= 1.0:
        raise ValueError("secondary_demand_fraction must be in (0, 1]")
    names = [s.name for s in servers]
    if len(set(names)) != len(names):
        raise ValueError("duplicate server names")

    total_demand = sum(n.demand_bps for n in networks)
    total_capacity = sum(s.capacity_bps for s in servers)
    if total_demand > total_capacity:
        raise ValueError(
            f"total demand {total_demand:.3g} bps exceeds total capacity "
            f"{total_capacity:.3g} bps"
        )

    remaining = {s.name: s.capacity_bps for s in servers}
    out: Dict[str, NetworkAssignment] = {}

    for network in sorted(networks, key=lambda n: -n.demand_bps):
        ranked = sorted(servers, key=lambda s: (cost(network, s), s.name))
        primary = next(
            (s for s in ranked if remaining[s.name] >= network.demand_bps), None
        )
        if primary is None:
            raise ValueError(
                f"no server has {network.demand_bps:.3g} bps left for "
                f"network {network.name!r}"
            )
        remaining[primary.name] -= network.demand_bps

        needed = network.demand_bps * secondary_demand_fraction
        secondary = next(
            (
                s
                for s in ranked
                if s.name != primary.name and remaining[s.name] >= needed
            ),
            None,
        )
        if secondary is None:
            raise ValueError(
                f"no secondary server with {needed:.3g} bps left for "
                f"network {network.name!r}"
            )
        remaining[secondary.name] -= needed
        out[network.name] = NetworkAssignment(
            network=network.name, primary=primary.name, secondary=secondary.name
        )
    return out


def split_trace(
    trace: Sequence[Request],
    networks: Sequence[UserNetwork],
    assignment: Mapping[str, NetworkAssignment],
    rng: np.random.Generator,
) -> Dict[str, List[Request]]:
    """Partition an aggregate trace into per-primary-server traces.

    Each request is attributed to a user network with probability
    proportional to demand, then routed to that network's primary
    server.  Time order is preserved within every per-server trace.
    """
    missing = [n.name for n in networks if n.name not in assignment]
    if missing:
        raise ValueError(f"networks without assignment: {missing}")
    weights = np.array([n.demand_bps for n in networks], dtype=float)
    weights /= weights.sum()
    choices = rng.choice(len(networks), size=len(trace), p=weights)

    out: Dict[str, List[Request]] = {}
    for request, idx in zip(trace, choices):
        primary = assignment[networks[int(idx)].name].primary
        out.setdefault(primary, []).append(request)
    return out
