"""Multi-server CDN substrate.

The paper deliberately scopes to a single cache server, but its system
model (Section 2) assumes a surrounding CDN: user networks mapped to
primary server locations by cost/constraints, a *secondary map* or
cache hierarchy receiving redirected requests, and fill origins serving
cache-fill traffic.  This package implements that substrate so the
"CDN-wide optimality with Cafe Cache" direction of Section 10 is
runnable:

* :mod:`repro.cdn.topology` — servers, user networks, primary/secondary
  maps and standard topology builders (two-level hierarchy, peered
  siblings);
* :mod:`repro.cdn.multiserver` — hierarchical replay: redirected
  requests follow the secondary map, cache-fills become upstream
  requests ("a request ... may be received from a user or from another
  (downstream) server for a cache fill"), the origin backstops
  everything;
* :mod:`repro.cdn.proactive` — the Section 10 "proactive caching"
  extension: prefetch popular content during off-peak hours using spare
  ingress;
* :mod:`repro.cdn.networks` — §2 fn. 3's user-network→server mapping
  under cost and capacity, with the secondary (redirect) map;
* :mod:`repro.cdn.sharding` — §2 fn. 2's hash-mod bucketization of the
  file-ID space over co-located caches;
* :mod:`repro.cdn.alpha_control` — §10's bounded alpha_F2R control
  loop;
* :mod:`repro.cdn.fleet` — §10's fleet-level alpha assignment: measured
  tradeoff curves + exact knapsack optimization under a backbone
  ingress budget.
"""

from repro.cdn.alpha_control import AlphaAdjustment, AlphaController
from repro.cdn.fleet import (
    FleetAssignment,
    OperatingPoint,
    measure_tradeoff_curves,
    optimize_alpha_assignment,
)
from repro.cdn.multiserver import CdnSimulationResult, CdnSimulator
from repro.cdn.networks import (
    NetworkAssignment,
    ServerLocation,
    UserNetwork,
    assign_networks,
    regional_cost,
    split_trace,
)
from repro.cdn.proactive import PrefetchStats, ProactiveFiller
from repro.cdn.sharding import ShardedServer, bucket_of
from repro.cdn.topology import CdnServer, CdnTopology, hierarchy, peered_edges

__all__ = [
    "AlphaController",
    "AlphaAdjustment",
    "OperatingPoint",
    "FleetAssignment",
    "measure_tradeoff_curves",
    "optimize_alpha_assignment",
    "UserNetwork",
    "ServerLocation",
    "NetworkAssignment",
    "assign_networks",
    "regional_cost",
    "split_trace",
    "ShardedServer",
    "bucket_of",
    "CdnServer",
    "CdnTopology",
    "hierarchy",
    "peered_edges",
    "CdnSimulator",
    "CdnSimulationResult",
    "ProactiveFiller",
    "PrefetchStats",
]
