"""Proactive caching: the Section 10 "spare ingress" extension.

"For cheap/non-constrained ingress ... we are investigating how to take
best advantage of under-utilized ingress whenever possible, such as
proactive caching during early morning hours."

:class:`ProactiveFiller` wraps any online cache.  It tracks recent video
demand (a windowed hit count) and, whenever the observed request rate
drops below ``offpeak_rate_fraction`` of the running mean — the early
morning trough of the diurnal cycle — it issues *prefetch* requests for
the most-demanded videos whose leading chunks are missing, up to an
ingress budget per off-peak window.

Prefetches flow through the cache's normal ``handle`` path (the cache
may still decline them), but their bytes are accounted separately: a
prefetch is ingress without user demand, so the wrapper reports demand
metrics and prefetch totals side by side.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.core.base import CacheResponse, Decision, VideoCache
from repro.trace.requests import Request

__all__ = ["ProactiveFiller", "PrefetchStats"]


@dataclass
class PrefetchStats:
    """Counters for prefetch activity."""

    attempts: int = 0
    accepted: int = 0
    filled_chunks: int = 0
    windows: int = 0

    @property
    def filled_bytes_factor(self) -> int:
        return self.filled_chunks


class ProactiveFiller:
    """Off-peak prefetching wrapper around an online cache.

    Use :meth:`handle` in place of ``cache.handle``; the wrapper
    piggybacks rate estimation and prefetch scheduling on the request
    stream (the simulator needs no event loop for this).
    """

    def __init__(
        self,
        cache: VideoCache,
        prefix_chunks: int = 2,
        rate_window: float = 3600.0,
        offpeak_rate_fraction: float = 0.6,
        budget_chunks_per_window: int = 64,
        top_videos: int = 32,
        demand_halflife_requests: int = 5000,
    ) -> None:
        if cache.offline:
            raise ValueError("proactive filling requires an online cache")
        if prefix_chunks < 1:
            raise ValueError("prefix_chunks must be >= 1")
        if not 0.0 < offpeak_rate_fraction < 1.0:
            raise ValueError("offpeak_rate_fraction must be in (0, 1)")
        self.cache = cache
        self.prefix_chunks = prefix_chunks
        self.rate_window = rate_window
        self.offpeak_rate_fraction = offpeak_rate_fraction
        self.budget_chunks = budget_chunks_per_window
        self.top_videos = top_videos
        self.demand_halflife = demand_halflife_requests
        self.stats = PrefetchStats()

        self._demand: Counter = Counter()
        self._video_bytes: dict[int, int] = {}
        self._arrivals: Deque[float] = deque()
        self._mean_rate: Optional[float] = None
        self._window_start: Optional[float] = None
        self._budget_left = 0
        self._requests_seen = 0

    def handle(self, request: Request) -> CacheResponse:
        """Pass the request through, updating demand and prefetching."""
        self._observe(request)
        response = self.cache.handle(request)
        self._maybe_prefetch(request.t)
        return response

    # -- internals -----------------------------------------------------------

    def _observe(self, request: Request) -> None:
        t = request.t
        self._requests_seen += 1
        self._demand[request.video] += 1
        known = self._video_bytes.get(request.video, 0)
        self._video_bytes[request.video] = max(known, request.b1 + 1)
        if self._requests_seen % self.demand_halflife == 0:
            for video in list(self._demand):
                self._demand[video] //= 2
                if self._demand[video] == 0:
                    del self._demand[video]

        self._arrivals.append(t)
        cutoff = t - self.rate_window
        while self._arrivals and self._arrivals[0] < cutoff:
            self._arrivals.popleft()

    def _current_rate(self) -> float:
        if len(self._arrivals) < 2:
            return 0.0
        span = self._arrivals[-1] - self._arrivals[0]
        if span <= 0:
            return 0.0
        return len(self._arrivals) / span

    def _maybe_prefetch(self, now: float) -> None:
        rate = self._current_rate()
        if rate <= 0:
            return
        # EWMA of the rate as the "normal" level to compare against.
        if self._mean_rate is None:
            self._mean_rate = rate
        else:
            self._mean_rate = 0.999 * self._mean_rate + 0.001 * rate

        if rate >= self._mean_rate * self.offpeak_rate_fraction:
            return  # not off-peak

        if self._window_start is None or now - self._window_start > self.rate_window:
            self._window_start = now
            self._budget_left = self.budget_chunks
            self.stats.windows += 1
        if self._budget_left <= 0:
            return

        for video, chunk in self._prefetch_candidates():
            if self._budget_left <= 0:
                break
            k = self.cache.chunk_bytes
            prefetch = Request(t=now, video=video, b0=chunk * k, b1=(chunk + 1) * k - 1)
            self.stats.attempts += 1
            response = self.cache.handle(prefetch)
            if response.decision is Decision.SERVE and response.filled_chunks:
                self.stats.accepted += 1
                self.stats.filled_chunks += response.filled_chunks
                self._budget_left -= response.filled_chunks

    def _prefetch_candidates(self) -> list[Tuple[int, int]]:
        """Missing leading chunks of the most-demanded videos."""
        out: list[Tuple[int, int]] = []
        for video, _count in self._demand.most_common(self.top_videos):
            size = self._video_bytes.get(video, 0)
            max_chunk = max(0, (size - 1) // self.cache.chunk_bytes)
            for chunk in range(min(self.prefix_chunks, max_chunk + 1)):
                if (video, chunk) not in self.cache:
                    out.append((video, chunk))
        return out
