"""Co-located server sharding by file-ID buckets (Section 2, fn. 2).

"Bucketizing the large space of file IDs (e.g., using hash-mod) and
taking the bucket IDs into account for mapping ... is a feasible (and
recommended) practice for dividing the file ID space over co-located
servers to balance load and minimize co-located duplicates."

:func:`bucket_of` hashes video IDs into a fixed bucket space;
:class:`ShardedServer` routes each request to one of N co-located
caches by its video's bucket, guaranteeing a chunk is never duplicated
across the shards of one location.  Note the paper's caveat holds by
construction: buckets are *coarse aggregation for load balancing*, not
atomic placement units — each shard still runs its own admission and
replacement over the diverse-popularity files its buckets contain.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

from repro.core.base import CacheResponse, VideoCache
from repro.trace.requests import ChunkId, Request

__all__ = ["bucket_of", "shard_of", "ShardedServer"]

DEFAULT_NUM_BUCKETS = 1024


def bucket_of(video: int, num_buckets: int = DEFAULT_NUM_BUCKETS) -> int:
    """Stable hash-mod bucket of a video ID.

    Uses blake2b rather than Python's ``hash`` so bucket assignment is
    stable across processes and runs (``PYTHONHASHSEED`` does not leak
    into experiment results).
    """
    if num_buckets <= 0:
        raise ValueError(f"num_buckets must be positive, got {num_buckets}")
    digest = hashlib.blake2b(
        video.to_bytes(8, "little", signed=False), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") % num_buckets


def shard_of(
    video: int, num_shards: int, num_buckets: int = DEFAULT_NUM_BUCKETS
) -> int:
    """The shard a video belongs to: ``bucket_of(video) % num_shards``.

    This is the *single* routing function shared by the offline
    :class:`ShardedServer`, the live serve router, the sharded client
    and the soak comparator — every request for a video always lands on
    the same shard, in every process, on every run, so per-video cache
    state stays coherent and no chunk is duplicated across shards.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    if num_buckets < num_shards:
        raise ValueError(
            f"need at least as many buckets ({num_buckets}) as shards "
            f"({num_shards})"
        )
    return bucket_of(video, num_buckets) % num_shards


class ShardedServer:
    """N co-located caches dividing the file-ID space.

    Routing: ``shard = bucket_of(video) % num_shards`` — every request
    for a video always lands on the same shard, so no chunk is ever
    stored twice within the location.  The object quacks like a single
    cache (``handle`` / ``__contains__`` / ``__len__``) so it drops into
    the replay engine; per-shard caches are exposed for inspection.
    """

    name = "Sharded"
    offline = False

    def __init__(
        self,
        shards: Sequence[VideoCache],
        num_buckets: int = DEFAULT_NUM_BUCKETS,
    ) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        if any(s.offline for s in shards):
            raise ValueError("sharding requires online caches")
        chunk_sizes = {s.chunk_bytes for s in shards}
        if len(chunk_sizes) != 1:
            raise ValueError("all shards must share one chunk size")
        if num_buckets < len(shards):
            raise ValueError("need at least as many buckets as shards")
        self.shards: List[VideoCache] = list(shards)
        self.num_buckets = num_buckets
        self.chunk_bytes = next(iter(chunk_sizes))
        self.cost_model = shards[0].cost_model
        self.shard_requests = [0] * len(shards)

    @property
    def disk_chunks(self) -> int:
        return sum(s.disk_chunks for s in self.shards)

    def shard_index(self, video: int) -> int:
        return shard_of(video, len(self.shards), self.num_buckets)

    def handle(self, request: Request) -> CacheResponse:
        index = self.shard_index(request.video)
        self.shard_requests[index] += 1
        return self.shards[index].handle(request)

    def prepare(self, requests) -> None:
        """Engine hook; sharded servers are online, nothing to do."""

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self.shards[self.shard_index(chunk[0])]

    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    def load_balance(self) -> float:
        """max/mean request load across shards (1.0 = perfect).

        Duplicate-free storage needs no runtime check: ``handle``
        routes each video deterministically to one shard, so a chunk
        can only ever be inserted there (tests verify the routing).
        """
        total = sum(self.shard_requests)
        if total == 0:
            return 1.0
        mean = total / len(self.shards)
        return max(self.shard_requests) / mean
