# Convenience targets for the reproduction repository.

PYTHON ?= python3

.PHONY: install test verify bench bench-quick bench-sweep bench-replay experiments examples clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Tier-1 gate: the full unit/integration suite against the in-tree
# sources (no install needed), plus a sweep-scheduler smoke bench.
verify:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q tests/
	REPRO_SCALE=quick PYTHONPATH=src $(PYTHON) -m pytest -q --benchmark-disable \
		benchmarks/test_perf_caches.py::test_sweep_throughput

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_SCALE=quick $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Sweep-throughput comparison (seed vs single-pass vs parallel); writes
# BENCH_sweep.json at the repo root.
bench-sweep:
	PYTHONPATH=src $(PYTHON) -m pytest -q --benchmark-disable \
		benchmarks/test_perf_caches.py::test_sweep_throughput

# Replay-throughput comparison (seed loop vs object path vs packed
# columnar lane vs parallel sweep); writes BENCH_replay.json.
bench-replay:
	PYTHONPATH=src $(PYTHON) -m pytest -q --benchmark-disable \
		benchmarks/test_replay_throughput.py

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

experiments:
	$(PYTHON) -m repro.cli experiment all --scale full --markdown report.md

examples:
	@for f in examples/*.py; do echo "=== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
