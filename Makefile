# Convenience targets for the reproduction repository.

PYTHON ?= python3

.PHONY: install test verify lint telemetry-demo bench bench-quick bench-sweep bench-replay bench-fleet bench-serve serve-soak serve-shard-soak experiments examples clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Tier-1 gate: the full unit/integration suite against the in-tree
# sources (no install needed), plus a sweep-scheduler smoke bench.
verify:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q tests/
	REPRO_SCALE=quick PYTHONPATH=src $(PYTHON) -m pytest -q --benchmark-disable \
		benchmarks/test_perf_caches.py::test_sweep_throughput

# Static checks (same commands the CI lint job runs; needs ruff).
lint:
	ruff check src tests benchmarks
	ruff format --check src/repro/obs tests/obs src/repro/cdn src/repro/trace \
		src/repro/core/policy

# End-to-end telemetry walkthrough: generate a small trace, replay it
# twice with cache probes on, then validate and compare the JSONL
# artifacts with repro-report.
telemetry-demo:
	PYTHONPATH=src $(PYTHON) -m repro.cli gen --server europe --days 4 \
		--scale 0.05 /tmp/repro-demo-trace.csv.gz
	PYTHONPATH=src $(PYTHON) -m repro.cli sim /tmp/repro-demo-trace.csv.gz \
		--algorithm Cafe --disk-chunks 500 \
		--telemetry /tmp/repro-demo-small.jsonl --snapshot-every 250
	PYTHONPATH=src $(PYTHON) -m repro.cli sim /tmp/repro-demo-trace.csv.gz \
		--algorithm Cafe --disk-chunks 6000 \
		--telemetry /tmp/repro-demo-big.jsonl --snapshot-every 250
	PYTHONPATH=src $(PYTHON) -m repro.cli report --check \
		/tmp/repro-demo-small.jsonl /tmp/repro-demo-big.jsonl
	PYTHONPATH=src $(PYTHON) -m repro.cli report /tmp/repro-demo-small.jsonl
	PYTHONPATH=src $(PYTHON) -m repro.cli report \
		/tmp/repro-demo-small.jsonl /tmp/repro-demo-big.jsonl

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_SCALE=quick $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Sweep-throughput comparison (seed vs single-pass vs parallel); writes
# BENCH_sweep.json at the repo root.
bench-sweep:
	PYTHONPATH=src $(PYTHON) -m pytest -q --benchmark-disable \
		benchmarks/test_perf_caches.py::test_sweep_throughput

# Replay-throughput comparison (seed loop vs object path vs packed
# columnar lane vs parallel sweep); writes BENCH_replay.json.
bench-replay:
	PYTHONPATH=src $(PYTHON) -m pytest -q --benchmark-disable \
		benchmarks/test_replay_throughput.py

# Fleet-replay comparison (object lane vs packed FleetTrace lane over
# the 6-edge hierarchy) plus the streamed-generation RSS measurement;
# updates this scale's section of BENCH_fleet.json.
bench-fleet:
	PYTHONPATH=src $(PYTHON) -m pytest -q --benchmark-disable \
		benchmarks/test_fleet_throughput.py

# Serve-daemon SLO bench (decision latency quantiles + sustained QPS
# over a unix socket); updates this scale's section of BENCH_serve.json.
bench-serve:
	PYTHONPATH=src $(PYTHON) -m pytest -q --benchmark-disable \
		benchmarks/test_serve_latency.py

# Fault soak: SIGKILL a live repro-serve daemon mid-trace (twice),
# inject malformed lines, resume from snapshots, and exit non-zero
# unless final totals are byte-identical to the batch replay.
serve-soak:
	PYTHONPATH=src $(PYTHON) -m repro.serve.soak \
		--scale 1.0 --days 4 --requests 20000 \
		--restarts 2 --malformed-every 500 \
		--telemetry /tmp/repro-serve-soak.jsonl
	PYTHONPATH=src $(PYTHON) -m repro.cli report --check \
		/tmp/repro-serve-soak.jsonl

# Sharded-fleet fault soak: 4 workers behind the video-hash router,
# SIGKILL one worker AND the router mid-trace; exit non-zero unless the
# merged totals are byte-identical to the sharded batch replay and the
# merged telemetry passes repro-report --check.
serve-shard-soak:
	PYTHONPATH=src $(PYTHON) -m repro.serve.soak \
		--workers 4 --scale 1.0 --days 2 --requests 8000 \
		--restarts 2 --malformed-every 500 --snapshot-every 500 \
		--telemetry /tmp/repro-serve-shard-soak.jsonl
	PYTHONPATH=src $(PYTHON) -m repro.cli report --check \
		/tmp/repro-serve-shard-soak.jsonl

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

experiments:
	$(PYTHON) -m repro.cli experiment all --scale full --markdown report.md

examples:
	@for f in examples/*.py; do echo "=== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
