# Convenience targets for the reproduction repository.

PYTHON ?= python3

.PHONY: install test bench bench-quick experiments examples clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_SCALE=quick $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

experiments:
	$(PYTHON) -m repro.cli experiment all --scale full --markdown report.md

examples:
	@for f in examples/*.py; do echo "=== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
